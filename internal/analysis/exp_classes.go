package analysis

// E20: traffic classes under deflection routing, following the priority
// direction of [ZA] ("hot potato routing and distance age priorities"): a
// strict class-priority greedy rule should buy the high class lower
// latency at congestion, paid for by the low class, with no change to the
// model (priorities only pick who wins contended arcs).

import (
	"fmt"

	"hotpotato/internal/mesh"
	"hotpotato/internal/routing"
	"hotpotato/internal/sim"
	"hotpotato/internal/stats"
	"hotpotato/internal/traffic"
)

func init() {
	register(Experiment{
		ID:    "E20",
		Title: "Traffic classes: strict class priority under continuous load",
		Claim: "With 20% of packets marked high class, a class-priority greedy rule lowers high-class latency toward the uncongested baseline while low-class latency rises moderately; a class-blind rule treats both identically.",
		Run:   runE20,
	})
}

func runE20(cfg Config) ([]*stats.Table, error) {
	n := 16
	genSteps := 600
	if cfg.Quick {
		n = 10
		genSteps = 200
	}
	m, err := mesh.New(2, n)
	if err != nil {
		return nil, err
	}

	policies := []struct {
		name string
		mk   func() sim.Policy
	}{
		{"class-blind (oldest-first)", routing.NewOldestFirst},
		{"class-priority", routing.NewClassPriority},
	}
	rates := []float64{0.05, 0.20}
	if cfg.Quick {
		rates = []float64{0.20}
	}

	tb := stats.NewTable(
		fmt.Sprintf("E20 (traffic classes): %dx%d mesh, 20%% high class, %d generation steps", n, n, genSteps),
		"policy", "rate/node", "class", "packets", "lat_mean", "lat_p99")
	for _, pol := range policies {
		for _, rate := range rates {
			src, err := traffic.NewBernoulli(rate, genSteps)
			if err != nil {
				return nil, err
			}
			src.HighFrac = 0.2
			e, err := sim.New(m, pol.mk(), nil, sim.Options{
				Seed:       cfg.SeedBase,
				Validation: sim.ValidateGreedy,
				MaxSteps:   genSteps * 40,
			})
			if err != nil {
				return nil, err
			}
			e.SetInjector(src)
			if _, err := e.Run(); err != nil {
				return nil, err
			}
			lat := map[int][]float64{}
			for _, p := range e.Packets() {
				if l := src.Latency(p); l >= 0 {
					lat[p.Class] = append(lat[p.Class], float64(l))
				}
			}
			for _, class := range []int{1, 0} {
				s := stats.Summarize(lat[class])
				tb.AddRow(pol.name, rate, class, s.N, s.Mean, s.P99)
			}
		}
	}
	tb.AddNote("latency = generation to arrival, source queueing included")
	tb.AddNote("class priority only reorders contended arcs: both runs remain legal greedy hot-potato routing")
	return []*stats.Table{tb}, nil
}
