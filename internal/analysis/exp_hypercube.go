package analysis

// E13: the hypercube, the network of the earliest greedy hot-potato
// results the paper builds on (Borodin-Hopcroft [BH], Prager [Pr], Hajek
// [Haj]). The d-dimensional mesh with side 2 *is* the d-cube, so the whole
// stack runs on it unchanged. Hajek proved a simple greedy algorithm
// delivers k packets in 2k + d steps on the 2^d-node cube; we run our
// greedy policies against that reference line.

import (
	"fmt"
	"math/rand"

	"hotpotato/internal/core"
	"hotpotato/internal/mesh"
	"hotpotato/internal/routing"
	"hotpotato/internal/sim"
	"hotpotato/internal/stats"
	"hotpotato/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "E13",
		Title: "Hypercube (side-2 mesh): greedy routing vs the Hajek 2k+d reference",
		Claim: "The d-cube is the d-dimensional side-2 mesh; greedy hot-potato algorithms route far below the Hajek bound 2k+d on random instances, and the Borodin-Hopcroft observation ('experimentally the algorithm appears promising') reproduces.",
		Run:   runE13,
	})
}

// HajekBound is the [Haj] bound for k packets on the 2^d-node hypercube:
// 2k + d steps (for his algorithm; shown as a reference line here).
func HajekBound(k, d int) int { return 2*k + d }

func runE13(cfg Config) ([]*stats.Table, error) {
	dims := []int{4, 6, 8}
	if cfg.Quick {
		dims = []int{4, 6}
	}
	trials := cfg.trials(5, 2)

	tb := stats.NewTable(
		"E13 (hypercube = side-2 mesh): greedy hot-potato routing on the d-cube",
		"d", "nodes", "workload", "k", "policy", "steps_mean", "steps_max", "hajek_2k+d", "lb_dmax")
	for _, d := range dims {
		m, err := mesh.New(d, 2)
		if err != nil {
			return nil, err
		}
		type wl struct {
			name string
			mk   func(rng *rand.Rand) ([]*sim.Packet, error)
		}
		wls := []wl{
			{"sparse", func(rng *rand.Rand) ([]*sim.Packet, error) {
				return workload.UniformRandom(m, m.Size()/4, rng)
			}},
			{"permutation", func(rng *rand.Rand) ([]*sim.Packet, error) {
				return workload.Permutation(m, rng), nil
			}},
		}
		pols := []struct {
			name string
			mk   func() sim.Policy
		}{
			{"fewest-good-first", core.NewFewestGoodFirst},
			{"greedy-random", routing.NewRandomGreedy},
		}
		for _, w := range wls {
			for _, pol := range pols {
				results, err := RunTrials(TrialSpec{
					Mesh:        m,
					NewPolicy:   pol.mk,
					NewWorkload: w.mk,
					Validation:  sim.ValidateGreedy,
				}, trials, cfg.SeedBase)
				if err != nil {
					return nil, err
				}
				if !AllDelivered(results) {
					return nil, fmt.Errorf("E13: %s/%s left packets undelivered at d=%d", w.name, pol.name, d)
				}
				sm := stats.SummarizeInts(Steps(results))
				k := results[0].Result.Total
				dmax := 0
				for _, r := range results {
					if r.DMax > dmax {
						dmax = r.DMax
					}
				}
				tb.AddRow(d, m.Size(), w.name, k, pol.name, sm.Mean, int(sm.Max), HajekBound(k, d), dmax)
			}
		}
	}
	tb.AddNote("%d trials per row; hajek_2k+d is the [Haj] bound for his algorithm, shown as a reference", trials)
	tb.AddNote("on the cube every packet is restricted iff it differs from its destination in exactly one bit")
	return []*stats.Table{tb}, nil
}
