package analysis

// E14: mesh vs torus. Several of the related results the paper discusses
// ([FR], [BRST], [KKR]) work on the torus, whose wraparound links halve
// distances and remove the edge effects that concentrate deflections. The
// experiment quantifies what the extra links buy greedy hot-potato routing.

import (
	"fmt"
	"math/rand"

	"hotpotato/internal/core"
	"hotpotato/internal/mesh"
	"hotpotato/internal/sim"
	"hotpotato/internal/stats"
	"hotpotato/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "E14",
		Title: "Mesh vs torus: what wraparound buys greedy hot-potato routing",
		Claim: "The torus halves worst-case distances (diameter d*n/2 vs d*(n-1)) and removes edge effects; greedy routing times drop accordingly while the algorithms and validation run unchanged (the paper's Section 6 notes bounds should improve when network parameters improve).",
		Run:   runE14,
	})
}

func runE14(cfg Config) ([]*stats.Table, error) {
	n := 16
	if cfg.Quick {
		n = 10
	}
	trials := cfg.trials(5, 2)
	k := n * n / 2

	networks := []struct {
		name string
		mk   func() (*mesh.Mesh, error)
	}{
		{"mesh", func() (*mesh.Mesh, error) { return mesh.New(2, n) }},
		{"torus", func() (*mesh.Mesh, error) { return mesh.NewTorus(2, n) }},
	}

	tb := stats.NewTable(
		fmt.Sprintf("E14 (mesh vs torus): restricted-priority greedy, side %d", n),
		"network", "workload", "k", "steps_mean", "dmax", "deflections_mean", "diameter")
	for _, net := range networks {
		m, err := net.mk()
		if err != nil {
			return nil, err
		}
		wls := []struct {
			name string
			mk   func(rng *rand.Rand) ([]*sim.Packet, error)
		}{
			{"uniform", func(rng *rand.Rand) ([]*sim.Packet, error) { return workload.UniformRandom(m, k, rng) }},
			{"permutation", func(rng *rand.Rand) ([]*sim.Packet, error) { return workload.Permutation(m, rng), nil }},
			{"hotspot", func(rng *rand.Rand) ([]*sim.Packet, error) { return workload.HotSpot(m, k, 0.5, rng) }},
		}
		for _, wl := range wls {
			results, err := RunTrials(TrialSpec{
				Mesh:        m,
				NewPolicy:   core.NewRestrictedPriority,
				NewWorkload: wl.mk,
				Validation:  sim.ValidateRestricted,
			}, trials, cfg.SeedBase)
			if err != nil {
				return nil, err
			}
			if !AllDelivered(results) {
				return nil, fmt.Errorf("E14: %s/%s left packets undelivered", net.name, wl.name)
			}
			sm := stats.SummarizeInts(Steps(results))
			var deflSum float64
			dmax := 0
			for _, r := range results {
				deflSum += float64(r.Result.TotalDeflections)
				if r.DMax > dmax {
					dmax = r.DMax
				}
			}
			tb.AddRow(net.name, wl.name, results[0].Result.Total, sm.Mean, dmax,
				deflSum/float64(len(results)), m.Diameter())
		}
	}
	tb.AddNote("%d trials per row; both networks run the identical policy under full Definition-6/18 validation", trials)
	return []*stats.Table{tb}, nil
}
