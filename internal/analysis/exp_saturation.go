package analysis

// E23: saturation throughput under generative and adversarial traffic.
// The renewal/bursty/adversarial sources behind the WorkloadSpec API let us
// ask how much of the Bernoulli saturation load survives when the same
// aggregate rate arrives with burstier interarrivals — or concentrated on
// one column by a (rho, sigma)-admissible adversary in the Borodon-
// Kleinberg/Even-Medina adversarial-queueing sense.

import (
	"fmt"
	"math"

	"hotpotato/internal/core"
	"hotpotato/internal/mesh"
	"hotpotato/internal/sim"
	"hotpotato/internal/stats"
	"hotpotato/internal/traffic"
)

func init() {
	register(Experiment{
		ID:    "E23",
		Title: "Saturation throughput: renewal, bursty and adversarial sources",
		Claim: "At a matched aggregate rate, greedy hot-potato routing sustains smooth (Bernoulli, Poisson) and moderately bursty traffic with comparable backlog, but a (rho, sigma)-admissible adversary aiming every packet at one column saturates the mesh at a small fraction of the uniform critical load — the backlog and drain time diverge while uniform sources at the same rate stay stable.",
		Run:   runE23,
	})
}

func runE23(cfg Config) ([]*stats.Table, error) {
	n := 12
	genSteps := 400
	if cfg.Quick {
		n = 8
		genSteps = 160
	}
	m, err := mesh.New(2, n)
	if err != nil {
		return nil, err
	}
	nodes := float64(m.Size())

	// The last rate aims the adversary's aggregate (rate * n^2) above the
	// target column's incoming cut (2n arcs per step), where no routing
	// policy can keep up — that is the divergence the claim is about.
	rates := []float64{0.02, 0.05, 0.10, 0.20, 0.30}
	if cfg.Quick {
		rates = []float64{0.05, 0.30}
	}

	// Each entry builds a fresh source offering `rate` packets per node per
	// step in the long run (the adversary concentrates the same aggregate
	// rate on the middle column).
	sources := []struct {
		name  string
		build func(rate float64) (*traffic.Source, error)
	}{
		{"bernoulli", func(rate float64) (*traffic.Source, error) {
			g, err := traffic.NewBernoulliGen(rate, genSteps)
			if err != nil {
				return nil, err
			}
			return traffic.NewSource(g)
		}},
		{"poisson", func(rate float64) (*traffic.Source, error) {
			g, err := traffic.NewPoisson(rate, genSteps)
			if err != nil {
				return nil, err
			}
			return traffic.NewSource(g)
		}},
		{"onoff-4x", func(rate float64) (*traffic.Source, error) {
			// Long-run load rate, delivered in bursts up to 4x as intense;
			// the duty cycle compensates when the peak hits probability 1.
			peak := math.Min(1, 4*rate)
			meanOn := 16.0
			meanOff := math.Max(1, meanOn*(peak/rate-1))
			g, err := traffic.NewOnOff(peak, meanOn, meanOff, genSteps)
			if err != nil {
				return nil, err
			}
			return traffic.NewSource(g)
		}},
		{"adversary-col", func(rate float64) (*traffic.Source, error) {
			g, err := traffic.NewAdversary(rate*nodes, 8, traffic.AxisCol, -1, genSteps)
			if err != nil {
				return nil, err
			}
			return traffic.NewSource(g)
		}},
	}

	tb := stats.NewTable(
		fmt.Sprintf("E23 (saturation): %dx%d mesh, restricted priority, %d generation steps + drain", n, n, genSteps),
		"source", "rate/node", "generated", "delivered", "lat_mean", "lat_p99", "end_backlog", "max_backlog", "drain_steps")
	for _, sc := range sources {
		for _, rate := range rates {
			src, err := sc.build(rate)
			if err != nil {
				return nil, err
			}
			e, err := sim.New(m, core.NewRestrictedPriority(), nil, sim.Options{
				Seed:       cfg.SeedBase,
				Validation: sim.ValidateGreedy,
				MaxSteps:   genSteps * 40,
			})
			if err != nil {
				return nil, err
			}
			e.SetInjector(src)
			res, err := e.Run()
			if err != nil {
				return nil, err
			}
			var lats []float64
			for _, p := range e.Packets() {
				if lat := src.Latency(p); lat >= 0 {
					lats = append(lats, float64(lat))
				}
			}
			ls := stats.Summarize(lats)
			drain := e.Time() - genSteps
			if drain < 0 {
				drain = 0
			}
			tb.AddRow(sc.name, rate, src.Generated(), res.Delivered,
				ls.Mean, ls.P99, src.Backlog(), src.MaxBacklog(), drain)
		}
	}
	tb.AddNote("all sources offer the same aggregate rate; the adversary aims it all at the middle column")
	tb.AddNote("saturation shows as end_backlog > 0 or drain_steps >> mesh diameter: arrivals outpace delivery")
	return []*stats.Table{tb}, nil
}
