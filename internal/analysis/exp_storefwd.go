package analysis

// E11: the motivating comparison of Section 1 — hot-potato (bufferless,
// deflecting) routing against classical store-and-forward routing with
// per-link FIFO buffers, in the style of [AS] and [Ma].

import (
	"fmt"
	"math/rand"

	"hotpotato/internal/core"
	"hotpotato/internal/mesh"
	"hotpotato/internal/sim"
	"hotpotato/internal/stats"
	"hotpotato/internal/storefwd"
	"hotpotato/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "E11",
		Title: "Hot-potato vs store-and-forward (the Section-1 motivation)",
		Claim: "Deflection routing needs zero packet buffers; store-and-forward needs per-node storage that grows with congestion. The batch routing times stay comparable (the premise of [AS]/[Ma] and of building bufferless machines like Mosaic C), so deflection trades a little time for all of the memory.",
		Run:   runE11,
	})
}

func runE11(cfg Config) ([]*stats.Table, error) {
	n := 16
	if cfg.Quick {
		n = 10
	}
	m, err := mesh.New(2, n)
	if err != nil {
		return nil, err
	}
	trials := cfg.trials(5, 2)
	k := n * n / 2

	wls := []struct {
		name string
		mk   func(rng *rand.Rand) ([]*sim.Packet, error)
	}{
		{"uniform", func(rng *rand.Rand) ([]*sim.Packet, error) { return workload.UniformRandom(m, k, rng) }},
		{"permutation", func(rng *rand.Rand) ([]*sim.Packet, error) { return workload.Permutation(m, rng), nil }},
		{"hotspot", func(rng *rand.Rand) ([]*sim.Packet, error) { return workload.HotSpot(m, k, 0.5, rng) }},
		{"transpose", func(rng *rand.Rand) ([]*sim.Packet, error) { return workload.Transpose(m) }},
	}

	tb := stats.NewTable(
		fmt.Sprintf("E11 (hot-potato vs store-and-forward): %dx%d mesh", n, n),
		"workload", "router", "steps_mean", "hops_mean", "buffered_max/node", "waits_or_defl_mean")
	for _, wl := range wls {
		// Hot-potato: the paper's restricted-priority policy. Zero buffers
		// by construction; deflections are the price.
		var hpSteps, hpDefl, hpHops []float64
		for trial := 0; trial < trials; trial++ {
			seed := cfg.SeedBase + int64(trial)
			rng := rand.New(rand.NewSource(seed))
			packets, err := wl.mk(rng)
			if err != nil {
				return nil, err
			}
			e, err := sim.New(m, core.NewRestrictedPriority(), packets, sim.Options{
				Seed:       seed + 1,
				Validation: sim.ValidateRestricted,
			})
			if err != nil {
				return nil, err
			}
			res, err := e.Run()
			if err != nil {
				return nil, err
			}
			if res.Delivered != res.Total {
				return nil, fmt.Errorf("E11: hot-potato left packets undelivered on %s", wl.name)
			}
			hpSteps = append(hpSteps, float64(res.Steps))
			hpDefl = append(hpDefl, float64(res.TotalDeflections))
			hpHops = append(hpHops, float64(res.TotalHops))
		}
		tb.AddRow(wl.name, "hot-potato", stats.Summarize(hpSteps).Mean,
			stats.Summarize(hpHops).Mean, 0, stats.Summarize(hpDefl).Mean)

		// Store-and-forward at several buffer capacities.
		for _, bufCap := range []int{0, 2, 1} {
			var steps, hops, waits []float64
			maxBuffered := 0
			for trial := 0; trial < trials; trial++ {
				seed := cfg.SeedBase + int64(trial)
				rng := rand.New(rand.NewSource(seed))
				packets, err := wl.mk(rng)
				if err != nil {
					return nil, err
				}
				e, err := storefwd.New(m, packets, storefwd.Options{BufferCap: bufCap})
				if err != nil {
					return nil, err
				}
				res, err := e.Run()
				if err != nil {
					return nil, err
				}
				if res.Delivered != res.Total {
					return nil, fmt.Errorf("E11: store-and-forward cap=%d left packets undelivered on %s", bufCap, wl.name)
				}
				steps = append(steps, float64(res.Steps))
				hops = append(hops, float64(res.TotalHops))
				waits = append(waits, float64(res.TotalWaits))
				if res.MaxNodeBuffered > maxBuffered {
					maxBuffered = res.MaxNodeBuffered
				}
			}
			name := fmt.Sprintf("store-fwd cap=%d", bufCap)
			if bufCap == 0 {
				name = "store-fwd inf"
			}
			tb.AddRow(wl.name, name, stats.Summarize(steps).Mean,
				stats.Summarize(hops).Mean, maxBuffered, stats.Summarize(waits).Mean)
		}
	}
	tb.AddNote("%d trials per row, identical instances per workload across routers", trials)
	tb.AddNote("hot-potato: buffered_max/node = 0 by construction, extra column = total deflections")
	tb.AddNote("store-and-forward: extra column = total packet-steps spent waiting in queues")
	return []*stats.Table{tb}, nil
}
