package analysis

// E22: routing under faults. The paper's model assumes a fixed intact mesh;
// this experiment measures how far the greedy guarantees degrade when links
// flap and nodes crash. Two claims are quantified: (a) with a bounded number
// of concurrent link failures — spare capacity everywhere — greedy policies
// still deliver everything, only slower (deflections around the holes); and
// (b) under node crashes the engine's degradation accounting is exact:
// every packet is delivered, dropped or absorbed, never lost silently.

import (
	"fmt"
	"math/rand"

	"hotpotato/internal/core"
	"hotpotato/internal/fault"
	"hotpotato/internal/mesh"
	"hotpotato/internal/routing"
	"hotpotato/internal/sim"
	"hotpotato/internal/stats"
	"hotpotato/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "E22",
		Title: "Fault injection: delivery and slowdown under link flaps and node crashes",
		Claim: "Greedy hot-potato routing degrades gracefully: with bounded concurrent link failures all packets still arrive (rerouting around holes costs extra steps), and under node crashes the delivered/dropped/absorbed accounting stays exact.",
		Run:   runE22,
	})
}

func runE22(cfg Config) ([]*stats.Table, error) {
	n := 16
	k := 128
	maxSteps := 20000
	trials := cfg.trials(5, 2)
	if cfg.Quick {
		n = 8
		k = 32
		maxSteps = 5000
	}
	m, err := mesh.New(2, n)
	if err != nil {
		return nil, err
	}

	flapTable, err := runE22Flaps(cfg, m, k, maxSteps, trials)
	if err != nil {
		return nil, err
	}
	crashTable, err := runE22Crashes(cfg, m, k, maxSteps, trials)
	if err != nil {
		return nil, err
	}
	return []*stats.Table{flapTable, crashTable}, nil
}

// runE22Flaps sweeps the link flap rate for several greedy policies. MaxDown
// bounds the concurrent failures well below the mesh's link count, so every
// node keeps spare out-capacity and no packet ever has to be shed.
func runE22Flaps(cfg Config, m *mesh.Mesh, k, maxSteps, trials int) (*stats.Table, error) {
	n := m.Side()
	policies := []struct {
		name string
		mk   func() sim.Policy
	}{
		{"restricted-priority", core.NewRestrictedPriority},
		{"greedy-random", routing.NewRandomGreedy},
		{"greedy-oldest-first", routing.NewOldestFirst},
	}
	rates := []float64{0, 0.0005, 0.002, 0.01}
	if cfg.Quick {
		rates = []float64{0, 0.002, 0.01}
	}
	maxDown := n / 2

	tb := stats.NewTable(
		fmt.Sprintf("E22a (link flaps): %dx%d mesh, k=%d, repair=0.05, <=%d links down at once, %d trials",
			n, n, k, maxDown, trials),
		"policy", "fail_rate", "delivered", "dropped", "delivery", "steps_mean", "slowdown", "reroutes", "link_fails")
	for _, pol := range policies {
		var baseline float64
		for _, rate := range rates {
			spec := TrialSpec{
				Mesh:      m,
				NewPolicy: pol.mk,
				NewWorkload: func(rng *rand.Rand) ([]*sim.Packet, error) {
					return workload.UniformRandom(m, k, rng)
				},
				MaxSteps: maxSteps,
			}
			if rate > 0 {
				r := rate
				spec.NewFaults = func() sim.FaultModel {
					f, err := fault.NewLinkFlaps(r, 0.05)
					if err != nil {
						panic(err) // rates are compile-time constants in [0,1]
					}
					f.MaxDown = maxDown
					return f
				}
			}
			results, err := RunTrials(spec, trials, cfg.SeedBase)
			if err != nil {
				return nil, err
			}
			var steps, delivered, dropped, total, reroutes, fails []float64
			for _, r := range results {
				steps = append(steps, float64(r.Result.Steps))
				delivered = append(delivered, float64(r.Result.Delivered))
				dropped = append(dropped, float64(r.Result.Dropped))
				total = append(total, float64(r.Result.Total))
				reroutes = append(reroutes, float64(r.Result.Reroutes))
				fails = append(fails, float64(r.Result.LinkFailures))
			}
			ss := stats.Summarize(steps)
			if rate == 0 {
				baseline = ss.Mean
			}
			tb.AddRow(pol.name, rate,
				int(stats.Summarize(delivered).Sum), int(stats.Summarize(dropped).Sum),
				ratio(stats.Summarize(delivered).Sum, stats.Summarize(total).Sum),
				ss.Mean, ratio(ss.Mean, baseline),
				int(stats.Summarize(reroutes).Sum), int(stats.Summarize(fails).Sum))
		}
	}
	tb.AddNote("delivery: fraction of packets delivered (1.0 expected — spare capacity everywhere)")
	tb.AddNote("slowdown: steps_mean / fault-free steps_mean of the same policy")
	tb.AddNote("reroutes: packet-steps with every geometrically good arc cut (forced detours)")
	return tb, nil
}

// runE22Crashes kills nodes permanently and checks the degradation ledger:
// with FateDrop crash victims count as dropped, with FateAbsorb as absorbed;
// either way delivered + dropped + absorbed must equal the instance size.
func runE22Crashes(cfg Config, m *mesh.Mesh, k, maxSteps, trials int) (*stats.Table, error) {
	n := m.Side()
	// Batch instances drain in tens of steps, so the per-node-per-step crash
	// probability must be high for any crash to land while packets are live.
	fates := []sim.PacketFate{sim.FateDrop, sim.FateAbsorb}
	rates := []float64{0.002, 0.01}
	if cfg.Quick {
		rates = []float64{0.01}
	}
	maxDown := 4

	tb := stats.NewTable(
		fmt.Sprintf("E22b (node crashes): %dx%d mesh, k=%d, permanent crashes, <=%d nodes down, %d trials",
			n, n, k, maxDown, trials),
		"fate", "crash_rate", "total", "delivered", "dropped", "absorbed", "node_fails", "balanced")
	for _, fate := range fates {
		for _, rate := range rates {
			r := rate
			spec := TrialSpec{
				Mesh:      m,
				NewPolicy: routing.NewRandomGreedy,
				NewWorkload: func(rng *rand.Rand) ([]*sim.Packet, error) {
					return workload.UniformRandom(m, k, rng)
				},
				MaxSteps: maxSteps,
				NewFaults: func() sim.FaultModel {
					f, err := fault.NewNodeCrashes(r, 0)
					if err != nil {
						panic(err)
					}
					f.MaxDown = maxDown
					return f
				},
				FaultFate: fate,
			}
			results, err := RunTrials(spec, trials, cfg.SeedBase)
			if err != nil {
				return nil, err
			}
			var total, delivered, dropped, absorbed, fails int
			balanced := true
			for _, res := range results {
				r := res.Result
				total += r.Total
				delivered += r.Delivered
				dropped += r.Dropped
				absorbed += r.Absorbed
				fails += r.NodeFailures
				if !r.HitMaxSteps && r.Delivered+r.Dropped+r.Absorbed != r.Total {
					balanced = false
				}
			}
			tb.AddRow(fate.String(), rate, total, delivered, dropped, absorbed, fails, balanced)
		}
	}
	tb.AddNote("balanced: delivered + dropped + absorbed == total in every completed trial")
	tb.AddNote("drop: crash victims count as dropped; absorb: they count as delivered-to-the-wrong-place (absorbed)")
	return tb, nil
}
