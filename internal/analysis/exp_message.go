package analysis

// E19: multi-flit messages over hot-potato flits ("packets and worms",
// [BRST], Section 1.1): message completion latency and reassembly skew as
// functions of message length and load, for independent-flit routing.

import (
	"fmt"
	"math/rand"

	"hotpotato/internal/core"
	"hotpotato/internal/mesh"
	"hotpotato/internal/message"
	"hotpotato/internal/sim"
	"hotpotato/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "E19",
		Title: "Multi-flit messages: latency and reassembly skew vs length and load",
		Claim: "Pipelined independent flits keep the pure hot-potato model; the cost is reassembly skew that grows with congestion but stays near the pipelining minimum at moderate load — quantifying what [BRST]-style contiguous worms would be buying.",
		Run:   runE19,
	})
}

func runE19(cfg Config) ([]*stats.Table, error) {
	n := 16
	if cfg.Quick {
		n = 10
	}
	m, err := mesh.New(2, n)
	if err != nil {
		return nil, err
	}
	trials := cfg.trials(5, 2)

	lengths := []int{1, 4, 8, 16}
	counts := []int{n, n * n / 4} // light and heavy message loads
	if cfg.Quick {
		lengths = []int{1, 4, 8}
	}

	tb := stats.NewTable(
		fmt.Sprintf("E19 (multi-flit messages): restricted-priority flits on the %dx%d mesh", n, n),
		"messages", "flits/msg", "total_flits", "lat_mean", "lat_max", "skew_mean", "skew_max", "pipeline_min_skew")
	for _, count := range counts {
		for _, length := range lengths {
			var latM, skewM float64
			var latX, skewX int
			for trial := 0; trial < trials; trial++ {
				seed := cfg.SeedBase + int64(trial)
				rng := rand.New(rand.NewSource(seed))
				msgs, err := message.RandomBatch(m, count, length, rng)
				if err != nil {
					return nil, err
				}
				src, err := message.NewSource(m, msgs)
				if err != nil {
					return nil, err
				}
				e, err := sim.New(m, core.NewRestrictedPriority(), nil, sim.Options{
					Seed:       seed + 1,
					Validation: sim.ValidateGreedy,
					MaxSteps:   200000,
				})
				if err != nil {
					return nil, err
				}
				e.SetInjector(src)
				if _, err := e.Run(); err != nil {
					return nil, err
				}
				st := message.Summarize(msgs)
				if st.Complete != count {
					return nil, fmt.Errorf("E19: %d/%d messages complete", st.Complete, count)
				}
				latM += st.MeanLatency
				skewM += st.MeanSkew
				if st.MaxLatency > latX {
					latX = st.MaxLatency
				}
				if st.MaxSkew > skewX {
					skewX = st.MaxSkew
				}
			}
			tb.AddRow(count, length, count*length,
				latM/float64(trials), latX, skewM/float64(trials), skewX, length-1)
		}
	}
	tb.AddNote("%d trials per row; flits of one message are injected one per step (pipelining)", trials)
	tb.AddNote("pipeline_min_skew = L-1: the skew of a perfectly contiguous delivery; excess skew is reassembly buffering a worm scheme would avoid")
	return []*stats.Table{tb}, nil
}
