package analysis

// E15: ablations of the design choices DESIGN.md calls out — the spare
// potential (vs a naive distance-only potential), the augmenting-path
// maximum matching (vs single-pass first-fit), the tie-breaking order and
// the deflection rule.

import (
	"fmt"
	"math/rand"

	"hotpotato/internal/core"
	"hotpotato/internal/mesh"
	"hotpotato/internal/routing"
	"hotpotato/internal/sim"
	"hotpotato/internal/stats"
	"hotpotato/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "E15",
		Title: "Ablations: spare potential, maximum matching, tie-breaks, deflection rule",
		Claim: "Each design ingredient earns its place: without the Figure-6 spare potential, Property 8 fails (the potential method collapses); without augmenting-path matching, fewer packets advance per step; tie-break and deflection randomization barely move batch times (the class is robust, as Theorem 20 suggests).",
		Run:   runE15,
	})
}

func runE15(cfg Config) ([]*stats.Table, error) {
	n := 16
	if cfg.Quick {
		n = 10
	}
	m, err := mesh.New(2, n)
	if err != nil {
		return nil, err
	}
	trials := cfg.trials(4, 2)

	// Part A: potential ablation. The distance-only potential must fail
	// Property 8 and Corollary 10 wherever real deflections happen.
	potTable := stats.NewTable(
		fmt.Sprintf("E15a (potential ablation): restricted-priority on the %dx%d mesh", n, n),
		"potential", "workload", "prop8_viol", "cor10_viol", "phi_monotone")
	potVariants := []struct {
		name string
		opts core.TrackerOptions
	}{
		{"figure-6 (dist + spare, burn 2)", core.TrackerOptions{}},
		{"figure-6 with burn 1", core.TrackerOptions{Burn: 1}},
		{"distance-only", core.TrackerOptions{DistanceOnly: true}},
	}
	for _, pv := range potVariants {
		for _, wl := range []struct {
			name string
			mk   func(rng *rand.Rand) ([]*sim.Packet, error)
		}{
			{"hotspot", func(rng *rand.Rand) ([]*sim.Packet, error) { return workload.HotSpot(m, n*n/2, 0.5, rng) }},
			{"permutation", func(rng *rand.Rand) ([]*sim.Packet, error) { return workload.Permutation(m, rng), nil }},
		} {
			var prop8, cor10 int
			monotone := true
			for trial := 0; trial < trials; trial++ {
				seed := cfg.SeedBase + int64(trial)
				rng := rand.New(rand.NewSource(seed))
				packets, err := wl.mk(rng)
				if err != nil {
					return nil, err
				}
				e, err := sim.New(m, core.NewRestrictedPriority(), packets, sim.Options{
					Seed:       seed + 1,
					Validation: sim.ValidateRestricted,
				})
				if err != nil {
					return nil, err
				}
				tr := core.NewTracker(m, packets, pv.opts)
				e.AddObserver(tr)
				if _, err := e.Run(); err != nil {
					return nil, err
				}
				v := tr.Violations()
				prop8 += v.Property8
				cor10 += v.Corollary10
				hist := tr.PhiHistory()
				for i := 1; i < len(hist); i++ {
					if hist[i] > hist[i-1] {
						monotone = false
					}
				}
			}
			potTable.AddRow(pv.name, wl.name, prop8, cor10, monotone)
		}
	}
	potTable.AddNote("%d trials per cell; distance-only must violate Property 8 wherever deflections occur", trials)
	potTable.AddNote("burn 1 probes minimality of the paper's burn rate: one spare unit per step cannot pay for a deflection")

	// Part B: algorithmic ablations on heavy traffic.
	variants := []struct {
		name string
		mk   func() sim.Policy
	}{
		{"full (A-first, max-match, rand-defl)", core.NewRestrictedPriority},
		{"deterministic ties + first-fit defl", core.NewRestrictedPriorityDeterministic},
		{"B-first within restricted", core.NewRestrictedPriorityTypeBFirst},
		{"single-pass matching (no augment)", func() sim.Policy {
			return routing.NewCustomSinglePass("restricted-single-pass",
				func(ns *sim.NodeState, i, j int) bool {
					ri, rj := 2, 2
					if ns.Info(i).Restricted {
						ri = 0
					}
					if ns.Info(j).Restricted {
						rj = 0
					}
					return ri < rj
				}, true, routing.DeflectRandom)
		}},
	}
	algoTable := stats.NewTable(
		fmt.Sprintf("E15b (algorithm ablation): 2-per-node full load on the %dx%d mesh", n, n),
		"variant", "steps_mean", "steps_max", "deflections_mean", "advance_frac")
	for _, v := range variants {
		results, err := RunTrials(TrialSpec{
			Mesh:      m,
			NewPolicy: v.mk,
			NewWorkload: func(rng *rand.Rand) ([]*sim.Packet, error) {
				return workload.FullLoad(m, 2, rng)
			},
			Validation: sim.ValidateRestricted,
		}, trials, cfg.SeedBase)
		if err != nil {
			return nil, err
		}
		if !AllDelivered(results) {
			return nil, fmt.Errorf("E15: %s left packets undelivered", v.name)
		}
		sm := stats.SummarizeInts(Steps(results))
		var deflSum, hopSum float64
		for _, r := range results {
			deflSum += float64(r.Result.TotalDeflections)
			hopSum += float64(r.Result.TotalHops)
		}
		algoTable.AddRow(v.name, sm.Mean, int(sm.Max),
			deflSum/float64(len(results)), 1-deflSum/hopSum)
	}
	algoTable.AddNote("%d trials per row; advance_frac = advancing moves / all moves", trials)
	algoTable.AddNote("single-pass is still greedy (Definition 6) and restricted-preferring, but advances fewer packets per node")
	return []*stats.Table{potTable, algoTable}, nil
}
