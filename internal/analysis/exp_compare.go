package analysis

// E9 and E10: algorithm comparison and the livelock study.

import (
	"fmt"
	"math/rand"

	"hotpotato/internal/bound"
	"hotpotato/internal/core"
	"hotpotato/internal/mesh"
	"hotpotato/internal/routing"
	"hotpotato/internal/sim"
	"hotpotato/internal/stats"
	"hotpotato/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "E9",
		Title: "Algorithm comparison: section-4 class vs greedy baselines",
		Claim: "Greedy hot-potato algorithms perform far better in simulation than the worst-case bounds (Section 1); restricted priority is competitive with other greedy tie-breaking rules; single-target and local instances track the 2(k-1)+dmax reference of Section 6.1.",
		Run:   runE9,
	})
	register(Experiment{
		ID:    "E10",
		Title: "Livelock: deterministic greedy tie-breaking vs the section-4 class",
		Claim: "Pure greediness admits livelock (Section 1.2, [NS1], [Haj]); Theorem 20 rules it out for any algorithm preferring restricted packets, including fully deterministic ones.",
		Run:   runE10,
	})
}

func runE9(cfg Config) ([]*stats.Table, error) {
	n := 16
	if cfg.Quick {
		n = 10
	}
	m, err := mesh.New(2, n)
	if err != nil {
		return nil, err
	}
	trials := cfg.trials(5, 2)
	// Heavy loads: with light traffic every greedy policy finishes in
	// exactly dmax steps and the comparison is vacuous.
	k := n * n

	policies := []struct {
		name string
		mk   func() sim.Policy
	}{
		{"restricted-priority", core.NewRestrictedPriority},
		{"fewest-good-first", core.NewFewestGoodFirst},
		{"greedy-random", routing.NewRandomGreedy},
		{"greedy-dest-order", routing.NewDestOrderGreedy},
		{"greedy-farthest-first", routing.NewFarthestFirst},
		{"greedy-nearest-first", routing.NewNearestFirst},
	}
	target := m.ID([]int{n / 2, n / 2})
	wls := []struct {
		name string
		mk   func(rng *rand.Rand) ([]*sim.Packet, error)
	}{
		{"uniform", func(rng *rand.Rand) ([]*sim.Packet, error) { return workload.UniformRandom(m, k, rng) }},
		{"full-load-2", func(rng *rand.Rand) ([]*sim.Packet, error) { return workload.FullLoad(m, 2, rng) }},
		{"permutation", func(rng *rand.Rand) ([]*sim.Packet, error) { return workload.Permutation(m, rng), nil }},
		{"single-target", func(rng *rand.Rand) ([]*sim.Packet, error) {
			return workload.SingleTarget(m, n*n/4, target, rng)
		}},
		{"local-r4", func(rng *rand.Rand) ([]*sim.Packet, error) { return workload.LocalRandom(m, k, 4, rng) }},
		{"transpose", func(rng *rand.Rand) ([]*sim.Packet, error) { return workload.Transpose(m) }},
	}

	var tables []*stats.Table
	for _, wl := range wls {
		tb := stats.NewTable(
			fmt.Sprintf("E9 (%s workload, %dx%d mesh): mean routing time by policy", wl.name, n, n),
			"policy", "steps_mean", "steps_std", "steps_max", "deflections_mean", "bts_ref", "lb_instance")
		for _, pol := range policies {
			results, err := RunTrials(TrialSpec{
				Mesh:        m,
				NewPolicy:   pol.mk,
				NewWorkload: wl.mk,
				Validation:  sim.ValidateGreedy,
			}, trials, cfg.SeedBase)
			if err != nil {
				return nil, err
			}
			if !AllDelivered(results) {
				return nil, fmt.Errorf("E9: %s on %s left packets undelivered", pol.name, wl.name)
			}
			sm := stats.SummarizeInts(Steps(results))
			var deflSum float64
			var dmax, kAct, lb int
			for _, r := range results {
				deflSum += float64(r.Result.TotalDeflections)
				if r.DMax > dmax {
					dmax = r.DMax
				}
				if b := bound.Instance(m, r.Packets); b > lb {
					lb = b
				}
				kAct = r.Result.Total
			}
			tb.AddRow(pol.name, sm.Mean, sm.Std, int(sm.Max),
				deflSum/float64(len(results)), BTSBound(kAct, dmax), lb)
		}
		tb.AddNote("%d trials per row; bts_ref = 2(k-1)+dmax (Section 6.1 reference, not a bound for these policies)", trials)
		tb.AddNote("lb_instance = max over trials of the instance lower bound (distance, destination congestion, bisection)")
		tables = append(tables, tb)
	}
	return tables, nil
}

// e10Policies are the deterministic greedy tie-breaking rules searched for
// livelock. Each is a legal greedy policy (engine-validated); none prefers
// restricted packets.
func e10Policies() []struct {
	name string
	mk   func() sim.Policy
} {
	return []struct {
		name string
		mk   func() sim.Policy
	}{
		{"fixed-id", func() sim.Policy { return routing.NewFixedPriority() }},
		{"reverse-id", func() sim.Policy {
			return routing.NewCustom("greedy-reverse-id",
				func(ns *sim.NodeState, i, j int) bool { return ns.Packets[i].ID > ns.Packets[j].ID },
				false, routing.DeflectFirstFit)
		}},
		{"nearest-det", func() sim.Policy {
			return routing.NewCustom("greedy-nearest-det",
				func(ns *sim.NodeState, i, j int) bool {
					di := ns.Mesh.Dist(ns.Packets[i].Node, ns.Packets[i].Dst)
					dj := ns.Mesh.Dist(ns.Packets[j].Node, ns.Packets[j].Dst)
					if di != dj {
						return di < dj
					}
					return ns.Packets[i].ID < ns.Packets[j].ID
				},
				false, routing.DeflectFirstFit)
		}},
		{"farthest-det", func() sim.Policy {
			return routing.NewCustom("greedy-farthest-det",
				func(ns *sim.NodeState, i, j int) bool {
					di := ns.Mesh.Dist(ns.Packets[i].Node, ns.Packets[i].Dst)
					dj := ns.Mesh.Dist(ns.Packets[j].Node, ns.Packets[j].Dst)
					if di != dj {
						return di > dj
					}
					return ns.Packets[i].ID < ns.Packets[j].ID
				},
				false, routing.DeflectFirstFit)
		}},
		{"antirestricted-det", func() sim.Policy {
			// Deliberately the opposite of the paper's class: packets with
			// MORE good directions win ties, so restricted packets starve.
			return routing.NewCustom("greedy-antirestricted",
				func(ns *sim.NodeState, i, j int) bool {
					gi, gj := ns.Info(i).GoodCount, ns.Info(j).GoodCount
					if gi != gj {
						return gi > gj
					}
					return ns.Packets[i].ID < ns.Packets[j].ID
				},
				false, routing.DeflectFirstFit)
		}},
	}
}

func runE10(cfg Config) ([]*stats.Table, error) {
	m, err := mesh.New(2, 4)
	if err != nil {
		return nil, err
	}
	configs := cfg.trials(3000, 300)
	maxSteps := 4000

	search := stats.NewTable(
		"E10a: livelock search, deterministic greedy tie-breaking on the 4x4 mesh",
		"policy", "configs", "livelocked", "hit_step_cap", "max_steps_seen", "first_livelock_seed")
	for _, pol := range e10Policies() {
		var livelocked, capped, maxSeen int
		firstSeed := int64(-1)
		for c := 0; c < configs; c++ {
			seed := cfg.SeedBase + int64(c)
			rng := rand.New(rand.NewSource(seed))
			k := 4 + rng.Intn(21)
			packets, err := workload.UniformRandom(m, k, rng)
			if err != nil {
				return nil, err
			}
			e, err := sim.New(m, pol.mk(), packets, sim.Options{
				Seed:           seed,
				Validation:     sim.ValidateGreedy,
				MaxSteps:       maxSteps,
				DetectLivelock: true,
			})
			if err != nil {
				return nil, err
			}
			res, err := e.Run()
			if err != nil {
				return nil, err
			}
			if res.Livelocked {
				livelocked++
				if firstSeed < 0 {
					firstSeed = seed
				}
			}
			if res.HitMaxSteps {
				capped++
			}
			if res.Steps > maxSeen {
				maxSeen = res.Steps
			}
		}
		search.AddRow(pol.name, configs, livelocked, capped, maxSeen, firstSeed)
	}
	search.AddNote("uniform random instances, k in [4, 24]; detection = exact configuration recurrence")
	search.AddNote("the [NS1]/[Haj] livelock constructions use adversarially scheduled tie-breaks; uniform deterministic rules may or may not exhibit recurrence on random instances")

	// The section-4 class cannot livelock (Theorem 20 bounds every member,
	// including deterministic ones): verify on the same instance stream.
	noLL := stats.NewTable(
		"E10b: restricted-priority (deterministic) on the same instances",
		"configs", "livelocked", "max_steps_seen", "max_bound_ratio")
	var maxSeen int
	var worstRatio float64
	for c := 0; c < configs; c++ {
		seed := cfg.SeedBase + int64(c)
		rng := rand.New(rand.NewSource(seed))
		k := 4 + rng.Intn(21)
		packets, err := workload.UniformRandom(m, k, rng)
		if err != nil {
			return nil, err
		}
		e, err := sim.New(m, core.NewRestrictedPriorityDeterministic(), packets, sim.Options{
			Seed:           seed,
			Validation:     sim.ValidateRestricted,
			MaxSteps:       maxSteps,
			DetectLivelock: true,
		})
		if err != nil {
			return nil, err
		}
		res, err := e.Run()
		if err != nil {
			return nil, err
		}
		if res.Livelocked {
			return nil, fmt.Errorf("E10: restricted-priority livelocked at seed %d, contradicting Theorem 20", seed)
		}
		if res.Steps > maxSeen {
			maxSeen = res.Steps
		}
		if r := ratio(float64(res.Steps), Theorem20Bound(m.Side(), k)); r > worstRatio {
			worstRatio = r
		}
	}
	noLL.AddRow(configs, 0, maxSeen, worstRatio)
	noLL.AddNote("Theorem 20 guarantees termination within 8*sqrt(2)*n*sqrt(k) for every class member; zero livelocks required")
	return []*stats.Table{search, noLL}, nil
}
