package analysis

import (
	"fmt"
	"slices"

	"hotpotato/internal/stats"
)

// Config scales the experiment harness.
type Config struct {
	// Quick shrinks mesh sizes and trial counts for CI-speed runs; the
	// full-size runs are what EXPERIMENTS.md records.
	Quick bool
	// SeedBase offsets all trial seeds for independent replications.
	SeedBase int64
}

func (c Config) trials(full, quick int) int {
	if c.Quick {
		return quick
	}
	return full
}

// Experiment is one reproducible result: a paper claim plus the code that
// regenerates the table quantifying it.
type Experiment struct {
	// ID is the experiment identifier from DESIGN.md (E1..E10).
	ID string
	// Title is a one-line description.
	Title string
	// Claim is the paper statement being reproduced.
	Claim string
	// Run regenerates the tables.
	Run func(cfg Config) ([]*stats.Table, error)
}

var registry = map[string]Experiment{}

func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic(fmt.Sprintf("analysis: duplicate experiment %s", e.ID))
	}
	registry[e.ID] = e
}

// Experiments returns all registered experiments ordered by ID.
func Experiments() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	// Order E1..E10 numerically, not lexically.
	slices.SortFunc(out, func(a, b Experiment) int {
		return expOrder(a.ID) - expOrder(b.ID)
	})
	return out
}

func expOrder(id string) int {
	var n int
	if _, err := fmt.Sscanf(id, "E%d", &n); err != nil {
		return 1 << 20
	}
	return n
}

// Lookup returns the experiment with the given ID.
func Lookup(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

func ratio(a float64, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
