package analysis

import (
	"math/rand"
	"testing"

	"hotpotato/internal/core"
	"hotpotato/internal/mesh"
	"hotpotato/internal/sim"
	"hotpotato/internal/workload"
)

func parallelSpec(m *mesh.Mesh) TrialSpec {
	return TrialSpec{
		Mesh:      m,
		NewPolicy: core.NewRestrictedPriority,
		NewWorkload: func(rng *rand.Rand) ([]*sim.Packet, error) {
			return workload.UniformRandom(m, 40, rng)
		},
		Track:      true,
		Validation: sim.ValidateRestricted,
	}
}

// TestParallelMatchesSerial: the parallel runner must reproduce the serial
// runner bit for bit, for any worker count.
func TestParallelMatchesSerial(t *testing.T) {
	m := mesh.MustNew(2, 8)
	serial, err := RunTrials(parallelSpec(m), 6, 50)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 7, 0} {
		parallel, err := RunTrialsParallel(parallelSpec(m), 6, 50, workers)
		if err != nil {
			t.Fatal(err)
		}
		if len(parallel) != len(serial) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(parallel), len(serial))
		}
		for i := range serial {
			if parallel[i].Result.Steps != serial[i].Result.Steps ||
				parallel[i].Result.TotalDeflections != serial[i].Result.TotalDeflections ||
				parallel[i].Phi0 != serial[i].Phi0 {
				t.Errorf("workers=%d trial %d: parallel (%d, %d, %d) != serial (%d, %d, %d)",
					workers, i,
					parallel[i].Result.Steps, parallel[i].Result.TotalDeflections, parallel[i].Phi0,
					serial[i].Result.Steps, serial[i].Result.TotalDeflections, serial[i].Phi0)
			}
		}
	}
}

func TestParallelEdgeCases(t *testing.T) {
	m := mesh.MustNew(2, 6)
	if res, err := RunTrialsParallel(parallelSpec(m), 0, 0, 4); err != nil || res != nil {
		t.Errorf("zero trials: %v, %v", res, err)
	}
	// Workers above trial count.
	res, err := RunTrialsParallel(parallelSpec(m), 2, 0, 100)
	if err != nil || len(res) != 2 {
		t.Errorf("more workers than trials: %v, %v", res, err)
	}
}

func TestParallelPropagatesErrors(t *testing.T) {
	m := mesh.MustNew(2, 6)
	spec := parallelSpec(m)
	spec.NewWorkload = func(rng *rand.Rand) ([]*sim.Packet, error) {
		return workload.UniformRandom(m, 1<<20, rng) // always fails
	}
	if _, err := RunTrialsParallel(spec, 3, 0, 2); err == nil {
		t.Error("workload error not propagated")
	}
}
