package analysis

// E1-E4 and E8: the running-time bound experiments. Each sweeps instance
// parameters, runs the paper's policies under strict validation, and
// tabulates measured routing time against the closed-form bounds.

import (
	"fmt"
	"math/rand"

	"hotpotato/internal/core"
	"hotpotato/internal/mesh"
	"hotpotato/internal/sim"
	"hotpotato/internal/stats"
	"hotpotato/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "E1",
		Title: "Theorem 20: routing time vs 8*sqrt(2)*n*sqrt(k)",
		Claim: "Every greedy algorithm preferring restricted packets routes any k-packet problem on the n x n mesh within 8*sqrt(2)*n*sqrt(k) steps.",
		Run:   runE1,
	})
	register(Experiment{
		ID:    "E2",
		Title: "Scaling in k at fixed n (sqrt(k) shape)",
		Claim: "At fixed n the bound grows as sqrt(k). On random instances measured time is distance-dominated, so the fitted exponent is well below 0.5 while the bound always holds - quantifying how far typical greedy behavior sits below the worst case (the 'superb performance' of Section 1).",
		Run:   runE2,
	})
	register(Experiment{
		ID:    "E3",
		Title: "Scaling in n at fixed load fraction",
		Claim: "At constant load fraction k = n^2/4 the bound is Theta(n^2); measured times on random instances grow near-linearly in n (distance-dominated), staying under the bound by a widening margin.",
		Run:   runE3,
	})
	register(Experiment{
		ID:    "E4",
		Title: "Section 5: d-dimensional bound",
		Claim: "The fewest-good-directions greedy policy routes k packets on the n^d mesh within 4^{d+1-1/d} d^{1-1/d} k^{1/d} n^{d-1} steps.",
		Run:   runE4,
	})
	register(Experiment{
		ID:    "E8",
		Title: "Section 4 remark: full-load permutations and parity splitting",
		Claim: "For k = n^2 (every node an origin) the parity-split argument gives an 8n^2 bound; for two packets per node, 11.4n^2 (Theorem 20 with k = 2n^2 gives 16n^2); origin parity classes never interact.",
		Run:   runE8,
	})
}

func uniformSpec(m *mesh.Mesh, k int) func(rng *rand.Rand) ([]*sim.Packet, error) {
	return func(rng *rand.Rand) ([]*sim.Packet, error) {
		return workload.UniformRandom(m, k, rng)
	}
}

func runE1(cfg Config) ([]*stats.Table, error) {
	type cell struct{ n, k int }
	var cells []cell
	ns := []int{8, 16, 32}
	if cfg.Quick {
		ns = []int{8, 16}
	}
	for _, n := range ns {
		seen := map[int]bool{}
		for _, k := range []int{n / 2, 2 * n, n * n / 4, n * n} {
			if !seen[k] {
				seen[k] = true
				cells = append(cells, cell{n, k})
			}
		}
	}
	trials := cfg.trials(5, 2)
	tb := stats.NewTable(
		"E1 (Theorem 20): restricted-priority greedy on uniform random many-to-many",
		"n", "k", "steps_mean", "steps_max", "bound", "max/bound", "dmax_mean", "violations")
	for _, c := range cells {
		m, err := mesh.New(2, c.n)
		if err != nil {
			return nil, err
		}
		results, err := RunTrials(TrialSpec{
			Mesh:        m,
			NewPolicy:   core.NewRestrictedPriority,
			NewWorkload: uniformSpec(m, c.k),
			Track:       true,
			Validation:  sim.ValidateRestricted,
		}, trials, cfg.SeedBase)
		if err != nil {
			return nil, err
		}
		if !AllDelivered(results) {
			return nil, fmt.Errorf("E1: undelivered packets at n=%d k=%d", c.n, c.k)
		}
		sm := stats.SummarizeInts(Steps(results))
		var dmaxSum int
		for _, r := range results {
			dmaxSum += r.DMax
		}
		bound := Theorem20Bound(c.n, c.k)
		v := TotalViolations(results)
		// The theorem is unconditional: exceeding the bound or breaking an
		// invariant is a reproduction failure, not a data point.
		if sm.Max > bound {
			return nil, fmt.Errorf("E1: Theorem 20 violated at n=%d k=%d: %d > %.0f", c.n, c.k, int(sm.Max), bound)
		}
		if v.Any() {
			return nil, fmt.Errorf("E1: potential invariants violated at n=%d k=%d: %s", c.n, c.k, v.String())
		}
		tb.AddRow(c.n, c.k, sm.Mean, int(sm.Max), bound, ratio(sm.Max, bound),
			float64(dmaxSum)/float64(len(results)), v.String())
	}
	tb.AddNote("%d trials per row; bound = 8*sqrt(2)*n*sqrt(k); all runs at ValidateRestricted", trials)
	return []*stats.Table{tb}, nil
}

func runE2(cfg Config) ([]*stats.Table, error) {
	n := 24
	if cfg.Quick {
		n = 12
	}
	m, err := mesh.New(2, n)
	if err != nil {
		return nil, err
	}
	trials := cfg.trials(5, 2)
	tb := stats.NewTable(
		fmt.Sprintf("E2 (sqrt(k) scaling): restricted-priority on the %dx%d mesh", n, n),
		"k", "steps_mean", "bound", "mean/bound")
	var ks []int
	for k := 8; k <= n*n; k *= 2 {
		ks = append(ks, k)
	}
	var fitX, fitY []float64
	for _, k := range ks {
		results, err := RunTrials(TrialSpec{
			Mesh:        m,
			NewPolicy:   core.NewRestrictedPriority,
			NewWorkload: uniformSpec(m, k),
			Validation:  sim.ValidateRestricted,
		}, trials, cfg.SeedBase)
		if err != nil {
			return nil, err
		}
		sm := stats.SummarizeInts(Steps(results))
		bound := Theorem20Bound(n, k)
		tb.AddRow(k, sm.Mean, bound, ratio(sm.Mean, bound))
		// Fit only the congestion-dominated regime (k >= n), where the
		// dmax ~ n term no longer dominates.
		if k >= n {
			fitX = append(fitX, float64(k))
			fitY = append(fitY, sm.Mean)
		}
	}
	if alpha, c, r2, err := stats.PowerLawFit(fitX, fitY); err == nil {
		tb.AddNote("power-law fit for k >= n: steps ~ %.2f * k^%.3f (R2=%.3f); Theorem 20 predicts exponent <= 0.5", c, alpha, r2)
	}
	tb.AddNote("%d trials per row", trials)
	return []*stats.Table{tb}, nil
}

func runE3(cfg Config) ([]*stats.Table, error) {
	ns := []int{8, 12, 16, 24, 32}
	if cfg.Quick {
		ns = []int{8, 12, 16}
	}
	trials := cfg.trials(5, 2)
	tb := stats.NewTable(
		"E3 (n scaling at constant load k = n^2/4): restricted-priority",
		"n", "k", "steps_mean", "bound", "mean/bound")
	var fitX, fitY []float64
	for _, n := range ns {
		m, err := mesh.New(2, n)
		if err != nil {
			return nil, err
		}
		k := n * n / 4
		results, err := RunTrials(TrialSpec{
			Mesh:        m,
			NewPolicy:   core.NewRestrictedPriority,
			NewWorkload: uniformSpec(m, k),
			Validation:  sim.ValidateRestricted,
		}, trials, cfg.SeedBase)
		if err != nil {
			return nil, err
		}
		sm := stats.SummarizeInts(Steps(results))
		bound := Theorem20Bound(n, k)
		tb.AddRow(n, k, sm.Mean, bound, ratio(sm.Mean, bound))
		fitX = append(fitX, float64(n))
		fitY = append(fitY, sm.Mean)
	}
	if alpha, c, r2, err := stats.PowerLawFit(fitX, fitY); err == nil {
		tb.AddNote("power-law fit: steps ~ %.2f * n^%.3f (R2=%.3f); bound is Theta(n^2) at this load", c, alpha, r2)
	}
	tb.AddNote("%d trials per row", trials)
	return []*stats.Table{tb}, nil
}

func runE4(cfg Config) ([]*stats.Table, error) {
	type cell struct{ d, n, k int }
	cells := []cell{
		{2, 16, 64}, {2, 16, 256},
		{3, 6, 64}, {3, 6, 216},
		{4, 4, 64}, {4, 4, 256},
	}
	if cfg.Quick {
		cells = []cell{{2, 8, 32}, {3, 4, 32}, {4, 3, 32}}
	}
	trials := cfg.trials(4, 2)
	tb := stats.NewTable(
		"E4 (Section 5): fewest-good-first greedy on the n^d mesh",
		"d", "n", "k", "steps_mean", "steps_max", "s5_bound", "max/bound", "prop8_viol_rate")
	for _, c := range cells {
		m, err := mesh.New(c.d, c.n)
		if err != nil {
			return nil, err
		}
		results, err := RunTrials(TrialSpec{
			Mesh:        m,
			NewPolicy:   core.NewFewestGoodFirst,
			NewWorkload: uniformSpec(m, c.k),
			Track:       true,
			Validation:  sim.ValidateGreedy,
		}, trials, cfg.SeedBase)
		if err != nil {
			return nil, err
		}
		if !AllDelivered(results) {
			return nil, fmt.Errorf("E4: undelivered packets at d=%d n=%d k=%d", c.d, c.n, c.k)
		}
		sm := stats.SummarizeInts(Steps(results))
		bound := Section5Bound(c.d, c.n, c.k)
		if sm.Max > bound {
			return nil, fmt.Errorf("E4: Section-5 bound violated at d=%d n=%d k=%d", c.d, c.n, c.k)
		}
		// For d >= 3 the exact potential construction is thesis-only; we
		// apply the 2-D Figure-6 rules verbatim and *measure* how often
		// Property 8 fails per node-step (expected: 0 for d = 2; small but
		// possibly nonzero for d >= 3, see DESIGN.md).
		v := TotalViolations(results)
		var nodeSteps int64
		for _, r := range results {
			nodeSteps += r.Result.TotalHops // upper bound proxy: moves = packet-steps
		}
		rate := 0.0
		if nodeSteps > 0 {
			rate = float64(v.Property8) / float64(nodeSteps)
		}
		tb.AddRow(c.d, c.n, c.k, sm.Mean, int(sm.Max), bound, ratio(sm.Max, bound), rate)
	}
	tb.AddNote("%d trials per row; s5_bound = 4^{d+1-1/d} d^{1-1/d} k^{1/d} n^{d-1}", trials)
	tb.AddNote("the exponential-in-d constant makes the bound very loose; the paper notes this (Section 6)")
	tb.AddNote("prop8_viol_rate: Property-8 failures per packet-move under the 2-D potential rules applied verbatim (reconstruction measurement for d >= 3; exactly 0 required for d = 2)")
	return []*stats.Table{tb}, nil
}

func runE8(cfg Config) ([]*stats.Table, error) {
	ns := []int{8, 16, 24}
	if cfg.Quick {
		ns = []int{8, 12}
	}
	trials := cfg.trials(5, 2)
	tb := stats.NewTable(
		"E8 (remark after Theorem 20): full-load instances",
		"n", "workload", "k", "steps_mean", "steps_max", "bound", "max/bound")
	for _, n := range ns {
		m, err := mesh.New(2, n)
		if err != nil {
			return nil, err
		}
		// One packet per node: random full permutation, remark bound 8n^2.
		permResults, err := RunTrials(TrialSpec{
			Mesh:      m,
			NewPolicy: core.NewRestrictedPriority,
			NewWorkload: func(rng *rand.Rand) ([]*sim.Packet, error) {
				return workload.Permutation(m, rng), nil
			},
			Validation: sim.ValidateRestricted,
		}, trials, cfg.SeedBase)
		if err != nil {
			return nil, err
		}
		sm := stats.SummarizeInts(Steps(permResults))
		bound := FullPermutationBound(n)
		if sm.Max > bound {
			return nil, fmt.Errorf("E8: 8n^2 bound violated at n=%d", n)
		}
		tb.AddRow(n, "permutation", n*n, sm.Mean, int(sm.Max), bound, ratio(sm.Max, bound))

		// Two packets per node (the densest instance every node, including
		// corners, can originate), Theorem 20 bound with k = 2n^2.
		loadResults, err := RunTrials(TrialSpec{
			Mesh:      m,
			NewPolicy: core.NewRestrictedPriority,
			NewWorkload: func(rng *rand.Rand) ([]*sim.Packet, error) {
				return workload.FullLoad(m, 2, rng)
			},
			Validation: sim.ValidateRestricted,
		}, trials, cfg.SeedBase)
		if err != nil {
			return nil, err
		}
		sm = stats.SummarizeInts(Steps(loadResults))
		bound = Theorem20Bound(n, 2*n*n)
		tb.AddRow(n, "2-per-node", 2*n*n, sm.Mean, int(sm.Max), bound, ratio(sm.Max, bound))
	}
	tb.AddNote("%d trials per row; permutation bound 8n^2 uses the origin-parity split", trials)
	tb.AddNote("the paper's 4-per-node case (bound 16n^2) is infeasible verbatim: corner nodes have out-degree 2; 2-per-node is the densest legal uniform load")

	// Parity-class independence: verify that packets of the two origin
	// parity classes never share a node at any step.
	parity := stats.NewTable(
		"E8b: origin-parity classes never interact (invariant of the remark)",
		"n", "steps", "mixed_node_steps")
	for _, n := range ns[:1] {
		m, err := mesh.New(2, n)
		if err != nil {
			return nil, err
		}
		mixed, steps, err := countParityMixing(m, cfg.SeedBase)
		if err != nil {
			return nil, err
		}
		parity.AddRow(n, steps, mixed)
	}
	parity.AddNote("a node-step is 'mixed' if a node simultaneously holds packets whose origins have different coordinate-sum parity; the invariant predicts 0")
	return []*stats.Table{tb, parity}, nil
}

// countParityMixing runs one permutation instance and counts node-steps
// where the two origin-parity classes meet.
func countParityMixing(m *mesh.Mesh, seed int64) (mixed, steps int, err error) {
	rng := rand.New(rand.NewSource(seed))
	packets := workload.Permutation(m, rng)
	parityOf := func(p *sim.Packet) int {
		sum := 0
		for a := 0; a < m.Dim(); a++ {
			sum += m.CoordAxis(p.Src, a)
		}
		return sum & 1
	}
	e, err := sim.New(m, core.NewRestrictedPriority(), packets, sim.Options{
		Seed:       seed,
		Validation: sim.ValidateRestricted,
	})
	if err != nil {
		return 0, 0, err
	}
	e.AddObserver(sim.ObserverFunc(func(rec *sim.StepRecord) {
		for lo := 0; lo < len(rec.Moves); {
			hi := lo + 1
			p0 := parityOf(rec.Moves[lo].Packet)
			isMixed := false
			for hi < len(rec.Moves) && rec.Moves[hi].From == rec.Moves[lo].From {
				if parityOf(rec.Moves[hi].Packet) != p0 {
					isMixed = true
				}
				hi++
			}
			if isMixed {
				mixed++
			}
			lo = hi
		}
	}))
	res, err := e.Run()
	if err != nil {
		return 0, 0, err
	}
	return mixed, res.Steps, nil
}
