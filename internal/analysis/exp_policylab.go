package analysis

// E24: the policy lab. Three tables, one per layer of internal/policylab:
// (a) conflict anatomy — what the recorded decision traces say about how
// often greedy conflicts happen and what they cost in potential under
// different priority rules; (b) counterfactual replay — how much the
// priority order actually matters from an identical mid-run configuration;
// (c) policy search — whether automated search over the weighted family
// rediscovers or beats the paper's restricted rule, and whether the winner
// still satisfies Property 8 empirically.

import (
	"fmt"

	"hotpotato/internal/mesh"
	"hotpotato/internal/policylab"
	"hotpotato/internal/policylab/search"
	"hotpotato/internal/sim"
	"hotpotato/internal/spec"
	"hotpotato/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "E24",
		Title: "Policy lab: conflict traces, counterfactual replay, and weighted-policy search",
		Claim: "Conflict-level decision traces quantify how a priority rule spends its deflections; replaying an identical checkpointed configuration under alternative priority orders bounds how much the rule (as opposed to the configuration) determines the outcome; and evolutionary search over the weighted family age/dist/restrict/defl finds a rule competitive with the paper's restricted priority while the potential-decrease check (Property 8) separates rules inside the paper's proof from rules outside it.",
		Run:   runE24,
	})
}

func runE24(cfg Config) ([]*stats.Table, error) {
	side := 12
	until := 200
	if cfg.Quick {
		side = 8
		until = 120
	}
	m, err := mesh.New(2, side)
	if err != nil {
		return nil, err
	}

	conflictTB, err := runE24Conflicts(cfg, m, until)
	if err != nil {
		return nil, err
	}
	replayTB, err := runE24Replay(cfg, m, until)
	if err != nil {
		return nil, err
	}
	searchTB, err := runE24Search(cfg, side)
	if err != nil {
		return nil, err
	}
	return []*stats.Table{conflictTB, replayTB, searchTB}, nil
}

// runE24Conflicts records conflict traces for several priority rules on the
// same (rho,sigma) column-adversary run and tabulates the anatomy: conflict
// count, contender and deflection volume, and the potential drop realized
// inside conflicts (Property 8 is exactly a lower bound on this drop at
// loaded nodes).
func runE24Conflicts(cfg Config, m *mesh.Mesh, until int) (*stats.Table, error) {
	policies := []string{"restricted", "oldest", "nearest", "random", "weighted:age=1,restrict=2"}
	arrivals := fmt.Sprintf("adversary:rho=%g,sigma=6,until=%d", float64(m.Side())/4, until)
	trials := cfg.trials(5, 2)

	tb := stats.NewTable(
		fmt.Sprintf("E24a (conflict anatomy): %dx%d mesh, %s, %d trials", m.Side(), m.Side(), arrivals, trials),
		"policy", "steps", "delivered", "conflicts", "contenders", "deflected", "phi_drop", "drop/conflict")
	for _, polSpec := range policies {
		var steps, delivered, conflicts, contenders, deflected, drop float64
		for trial := 0; trial < trials; trial++ {
			seed := cfg.SeedBase + int64(trial)
			pol, err := spec.NewPolicy(polSpec)
			if err != nil {
				return nil, err
			}
			e, err := sim.New(m, pol, nil, sim.Options{
				Seed: seed, MaxSteps: until * 40, Validation: sim.ValidateGreedy,
			})
			if err != nil {
				return nil, err
			}
			as, err := spec.ParseArrivalSpec(arrivals)
			if err != nil {
				return nil, err
			}
			src, err := spec.BuildArrivals(as, m)
			if err != nil {
				return nil, err
			}
			e.SetInjector(src)
			rec := policylab.NewRecorder(0)
			e.SetConflictObserver(rec)
			res, err := e.Run()
			if err != nil {
				return nil, err
			}
			total, cont, defl, db, da := rec.Stats()
			steps += float64(res.Steps)
			delivered += float64(res.Delivered)
			conflicts += float64(total)
			contenders += float64(cont)
			deflected += float64(defl)
			drop += float64(db - da)
		}
		f := float64(trials)
		perConflict := 0.0
		if conflicts > 0 {
			perConflict = drop / conflicts
		}
		tb.AddRow(polSpec, steps/f, delivered/f, conflicts/f,
			contenders/f, deflected/f, drop/f, perConflict)
	}
	tb.AddNote("conflict = a node whose move group this step had >=2 contenders and >=1 deflection; phi_drop = distance potential released inside conflicts (Property 8 lower-bounds this at loaded nodes)")
	return tb, nil
}

// runE24Replay checkpoints one adversary run mid-burst and replays the same
// window under alternative priority orders, tabulating the divergence.
func runE24Replay(cfg Config, m *mesh.Mesh, until int) (*stats.Table, error) {
	arrivals := fmt.Sprintf("adversary:rho=%g,sigma=6,until=%d", float64(m.Side())/4, until)
	window := 10 * m.Side()
	ckptAt := until / 2

	pol, err := spec.NewPolicy("restricted")
	if err != nil {
		return nil, err
	}
	e, err := sim.New(m, pol, nil, sim.Options{
		Seed: cfg.SeedBase, MaxSteps: until * 40, Validation: sim.ValidateGreedy,
	})
	if err != nil {
		return nil, err
	}
	as, err := spec.ParseArrivalSpec(arrivals)
	if err != nil {
		return nil, err
	}
	src, err := spec.BuildArrivals(as, m)
	if err != nil {
		return nil, err
	}
	e.SetInjector(src)
	for e.Time() < ckptAt {
		if err := e.Step(); err != nil {
			return nil, err
		}
	}
	snap, err := e.Snapshot()
	if err != nil {
		return nil, err
	}

	rep, err := policylab.Replay(snap, policylab.ReplayConfig{
		Baseline:     "restricted",
		Alternatives: []string{"oldest", "nearest", "random", "weighted:age=1,restrict=2"},
		Steps:        window,
		Arrivals:     as,
	})
	if err != nil {
		return nil, err
	}

	tb := stats.NewTable(
		fmt.Sprintf("E24b (counterfactual replay): %dx%d mesh, %s, checkpoint at t=%d, window %d steps",
			m.Side(), m.Side(), arrivals, rep.CheckpointTime, window),
		"policy", "delivered", "deflections", "mean_delay", "phi_L1", "diverge_at")
	tb.AddRow(rep.Baseline.Policy+" (baseline)", rep.Baseline.Delivered, rep.Baseline.Deflections,
		rep.Baseline.MeanDelay, "-", "-")
	for _, d := range rep.Alternatives {
		div := "never"
		if d.FirstDiverge >= 0 {
			div = fmt.Sprintf("t+%d", d.FirstDiverge)
		}
		tb.AddRow(d.Policy, d.Delivered, d.Deflections, d.MeanDelay, d.PotentialL1, div)
	}
	tb.AddNote("all arms restored from the same checkpoint (%d packets in flight) with identical RNG state; only the priority order differs", rep.Live)
	return tb, nil
}

// runE24Search runs the evolutionary search and tabulates the discovered
// policy against the restricted baseline, plus the Property 8 verdict.
func runE24Search(cfg Config, side int) (*stats.Table, error) {
	scfg := search.Config{
		Side:        side,
		Seeds:       []int64{cfg.SeedBase, cfg.SeedBase + 1},
		Population:  12,
		Generations: 5,
		Seed:        cfg.SeedBase + 7,
		VerifySteps: 40 * side,
	}
	if cfg.Quick {
		scfg.Population = 8
		scfg.Generations = 3
		scfg.Seeds = scfg.Seeds[:1]
	}
	rep, err := search.Run(scfg)
	if err != nil {
		return nil, err
	}

	tb := stats.NewTable(
		fmt.Sprintf("E24c (policy search): %dx%d mesh, %d generations x %d candidates, %d unique policies evaluated",
			side, side, rep.Config.Generations, rep.Config.Population, rep.Evaluated),
		"policy", "fitness", "perm/steps", "poisson/p99", "adversary/p99")
	row := func(label string, c search.Candidate) {
		tb.AddRow(label, c.Fitness,
			c.Scores["perm/steps"], c.Scores["poisson/p99"], c.Scores["adversary/p99"])
	}
	row(rep.Baseline.Spec+" (baseline)", rep.Baseline)
	row(rep.Best.Spec, rep.Best)
	for _, w := range rep.Wins {
		tb.AddNote("beats baseline on %s: %.2f < %.2f (%+.1f%%)", w.Entry, w.Score, w.Baseline, 100*(w.Score-w.Baseline)/w.Baseline)
	}
	if v := rep.Verification; v != nil {
		held := "held (no violations)"
		if !v.Property8Held {
			held = fmt.Sprintf("VIOLATED %d times (%s)", v.Property8Violations, v.Violations)
		}
		tb.AddNote("verification: Property 8 %s for %s over %d steps", held, v.Policy, v.Steps)
	}
	tb.AddNote("fitness = mean over the panel of score/baseline (< 1 beats the baseline); search seed %d", rep.Config.Seed)
	return tb, nil
}
