package analysis

// E12: continuous (steady-state) traffic, the regime of the deflection
// network studies the paper builds its motivation on ([GG], [Ma], [ZA]):
// latency and backlog as functions of offered load, up to saturation.

import (
	"fmt"

	"hotpotato/internal/core"
	"hotpotato/internal/mesh"
	"hotpotato/internal/routing"
	"hotpotato/internal/sim"
	"hotpotato/internal/stats"
	"hotpotato/internal/traffic"
)

func init() {
	register(Experiment{
		ID:    "E12",
		Title: "Steady-state deflection routing: latency vs offered load",
		Claim: "Under continuous traffic, greedy hot-potato routing delivers near-shortest-path latency at low load and degrades gracefully toward a saturation load; restricted priority behaves like the other greedy rules below saturation (the 'sharp' regime of [GG]).",
		Run:   runE12,
	})
}

func runE12(cfg Config) ([]*stats.Table, error) {
	n := 16
	genSteps := 600
	if cfg.Quick {
		n = 10
		genSteps = 200
	}
	m, err := mesh.New(2, n)
	if err != nil {
		return nil, err
	}

	policies := []struct {
		name string
		mk   func() sim.Policy
	}{
		{"restricted-priority", core.NewRestrictedPriority},
		{"greedy-random", routing.NewRandomGreedy},
		{"greedy-oldest-first", routing.NewOldestFirst},
	}
	rates := []float64{0.01, 0.02, 0.05, 0.10, 0.20, 0.40}
	if cfg.Quick {
		rates = []float64{0.02, 0.10, 0.40}
	}

	tb := stats.NewTable(
		fmt.Sprintf("E12 (steady state): %dx%d mesh, Bernoulli sources for %d steps + drain", n, n, genSteps),
		"policy", "rate/node", "generated", "delivered", "lat_mean", "lat_p99", "net_mean", "max_backlog", "drain_steps")
	for _, pol := range policies {
		for _, rate := range rates {
			src, err := traffic.NewBernoulli(rate, genSteps)
			if err != nil {
				return nil, err
			}
			e, err := sim.New(m, pol.mk(), nil, sim.Options{
				Seed:       cfg.SeedBase,
				Validation: sim.ValidateGreedy,
				MaxSteps:   genSteps * 40,
			})
			if err != nil {
				return nil, err
			}
			e.SetInjector(src)
			res, err := e.Run()
			if err != nil {
				return nil, err
			}
			// Latency = generation to arrival (source queueing included);
			// network time = hops traversed (deflection detours included).
			var lats, nets []float64
			for _, p := range e.Packets() {
				if lat := src.Latency(p); lat >= 0 {
					lats = append(lats, float64(lat))
					nets = append(nets, float64(p.Hops))
				}
			}
			ls := stats.Summarize(lats)
			ns := stats.Summarize(nets)
			drain := e.Time() - genSteps
			tb.AddRow(pol.name, rate, src.Generated(), res.Delivered,
				ls.Mean, ls.P99, ns.Mean, src.MaxBacklog(), drain)
		}
	}
	tb.AddNote("lat = generation to arrival (includes source queueing); net = hops traversed")
	tb.AddNote("drain_steps: time to empty the network after generation stops; a saturated load drains long after")
	return []*stats.Table{tb}, nil
}
