package analysis

// E5 and E6: the potential-function experiments, validating Property 8 /
// Lemma 19 and the Phi-decay chain (Corollary 10, Lemmas 12, 14, 15) on
// live traffic.

import (
	"fmt"
	"math"
	"math/rand"

	"hotpotato/internal/core"
	"hotpotato/internal/mesh"
	"hotpotato/internal/sim"
	"hotpotato/internal/stats"
	"hotpotato/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "E5",
		Title: "Property 8 / Lemma 19: per-node potential loss",
		Claim: "For any algorithm preferring restricted packets on the 2-D mesh, every node holding l packets loses >= l potential units (l <= 2) or >= 4 - l units (l > 2) in every step; phi stays in [0, 4n] and is 0 only on arrival.",
		Run:   runE5,
	})
	register(Experiment{
		ID:    "E6",
		Title: "Corollary 10 and Lemma 12: global potential decay",
		Claim: "Phi(t+1) <= Phi(t) - G(t) and Phi(t+2) <= Phi(t) - F(t) at every step; F(t) >= (2d)^{1/d} B(t)^{(d-1)/d} (Lemma 14).",
		Run:   runE6,
	})
}

type e5Workload struct {
	name string
	mk   func(m *mesh.Mesh, rng *rand.Rand) ([]*sim.Packet, error)
}

func e5Workloads(k int) []e5Workload {
	return []e5Workload{
		{"uniform", func(m *mesh.Mesh, rng *rand.Rand) ([]*sim.Packet, error) {
			return workload.UniformRandom(m, k, rng)
		}},
		{"permutation", func(m *mesh.Mesh, rng *rand.Rand) ([]*sim.Packet, error) {
			return workload.Permutation(m, rng), nil
		}},
		{"hotspot", func(m *mesh.Mesh, rng *rand.Rand) ([]*sim.Packet, error) {
			return workload.HotSpot(m, k, 0.5, rng)
		}},
		{"transpose", func(m *mesh.Mesh, rng *rand.Rand) ([]*sim.Packet, error) {
			return workload.Transpose(m)
		}},
		{"corner-rush", func(m *mesh.Mesh, rng *rand.Rand) ([]*sim.Packet, error) {
			return workload.CornerRush(m, k/2, rng)
		}},
	}
}

func runE5(cfg Config) ([]*stats.Table, error) {
	n := 16
	if cfg.Quick {
		n = 10
	}
	m, err := mesh.New(2, n)
	if err != nil {
		return nil, err
	}
	trials := cfg.trials(4, 2)
	k := n * n / 2

	policies := []struct {
		name string
		mk   func() sim.Policy
	}{
		{"A-first", core.NewRestrictedPriority},
		{"A-first-det", core.NewRestrictedPriorityDeterministic},
		{"B-first", core.NewRestrictedPriorityTypeBFirst},
	}
	tb := stats.NewTable(
		fmt.Sprintf("E5 (Property 8 / Lemma 19): %dx%d mesh, section-4 policy variants", n, n),
		"policy", "workload", "steps_mean", "prop8", "phi_range", "phi_zero_live",
		"min_phi", "min_spare", "typeA_deflections")
	for _, pol := range policies {
		for _, wl := range e5Workloads(k) {
			results, err := RunTrials(TrialSpec{
				Mesh:      m,
				NewPolicy: pol.mk,
				NewWorkload: func(rng *rand.Rand) ([]*sim.Packet, error) {
					return wl.mk(m, rng)
				},
				Track:      true,
				Validation: sim.ValidateRestricted,
			}, trials, cfg.SeedBase)
			if err != nil {
				return nil, err
			}
			sm := stats.SummarizeInts(Steps(results))
			v := TotalViolations(results)
			minPhi, minSpare := math.MaxInt, math.MaxInt
			for _, r := range results {
				if r.MinPhi < minPhi {
					minPhi = r.MinPhi
				}
				if r.MinSpare < minSpare {
					minSpare = r.MinSpare
				}
			}
			// Lemma 19 is proved for the whole class: a Property-8 or
			// Corollary-10 breach is a reproduction failure.
			if v.Property8+v.Corollary10+v.Lemma12+v.Lemma14+v.Lemma15+v.Conservation > 0 {
				return nil, fmt.Errorf("E5: %s on %s violated the potential analysis: %s",
					pol.name, wl.name, v.String())
			}
			tb.AddRow(pol.name, wl.name, sm.Mean, v.Property8, v.PhiRange, v.PhiZeroLive,
				minPhi, minSpare, v.TypeADeflector)
		}
	}
	tb.AddNote("%d trials per cell; M = 4n = %d; expected: zero violations in every column", trials, 4*n)
	tb.AddNote("B-first deliberately deflects type-A packets, exercising switch rule 3(b)")
	return []*stats.Table{tb}, nil
}

func runE6(cfg Config) ([]*stats.Table, error) {
	n := 16
	if cfg.Quick {
		n = 10
	}
	m, err := mesh.New(2, n)
	if err != nil {
		return nil, err
	}
	trials := cfg.trials(4, 2)
	k := n * n / 2

	tb := stats.NewTable(
		fmt.Sprintf("E6 (Phi decay chain): restricted-priority on the %dx%d mesh", n, n),
		"workload", "steps_mean", "cor10_viol", "lemma12_viol", "lemma14_viol", "lemma15_viol",
		"phi0_mean", "bad_steps_frac", "surface_arcs_max")
	for _, wl := range e5Workloads(k) {
		var phi0Sum float64
		var cor10, l12, l14, l15 int
		var badSteps, totalSteps, surfaceMax int
		var stepsSamples []int
		for trial := 0; trial < trials; trial++ {
			seed := cfg.SeedBase + int64(trial)
			rng := rand.New(rand.NewSource(seed))
			packets, err := wl.mk(m, rng)
			if err != nil {
				return nil, err
			}
			e, err := sim.New(m, core.NewRestrictedPriority(), packets, sim.Options{
				Seed:       seed + 1,
				Validation: sim.ValidateRestricted,
			})
			if err != nil {
				return nil, err
			}
			tr := core.NewTracker(m, packets, core.TrackerOptions{RecordSeries: true, SelfCheckEvery: 64})
			e.AddObserver(tr)
			res, err := e.Run()
			if err != nil {
				return nil, err
			}
			v := tr.Violations()
			cor10 += v.Corollary10
			l12 += v.Lemma12
			l14 += v.Lemma14
			l15 += v.Lemma15
			phi0Sum += float64(tr.Phi0())
			stepsSamples = append(stepsSamples, res.Steps)
			for _, s := range tr.Series() {
				totalSteps++
				if s.Bad > 0 {
					badSteps++
				}
				if s.SurfaceArcs > surfaceMax {
					surfaceMax = s.SurfaceArcs
				}
			}
		}
		sm := stats.SummarizeInts(stepsSamples)
		badFrac := 0.0
		if totalSteps > 0 {
			badFrac = float64(badSteps) / float64(totalSteps)
		}
		if cor10+l12+l14+l15 > 0 {
			return nil, fmt.Errorf("E6: decay-chain violation on %s: cor10=%d l12=%d l14=%d l15=%d",
				wl.name, cor10, l12, l14, l15)
		}
		tb.AddRow(wl.name, sm.Mean, cor10, l12, l14, l15,
			phi0Sum/float64(trials), badFrac, surfaceMax)
	}
	tb.AddNote("%d trials per row; all violation columns are expected to be zero", trials)
	tb.AddNote("bad_steps_frac: fraction of steps with at least one bad node (> d packets)")
	return []*stats.Table{tb}, nil
}
