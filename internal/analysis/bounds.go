// Package analysis ties the system together for reproduction: closed-form
// bound formulas from the paper and its related work, a trial runner that
// executes routing problems with potential tracking, and the experiment
// registry that regenerates every table and figure listed in DESIGN.md.
package analysis

import (
	"math"

	"hotpotato/internal/mesh"
	"hotpotato/internal/sim"
)

// Theorem17Bound returns the generic potential-method bound of Theorem 17:
// (4d)^{1-1/d} * k^{1/d} * M steps for any algorithm admitting a potential
// function with Property 8 and per-packet bound M.
func Theorem17Bound(d, k int, m float64) float64 {
	df := float64(d)
	return math.Pow(4*df, 1-1/df) * math.Pow(float64(k), 1/df) * m
}

// Theorem20Bound returns the Section-4 bound for the two-dimensional mesh:
// 8*sqrt(2) * n * sqrt(k) steps for any greedy algorithm preferring
// restricted packets (Theorem 17 with d = 2 and M = 4n).
func Theorem20Bound(n, k int) float64 {
	return 8 * math.Sqrt2 * float64(n) * math.Sqrt(float64(k))
}

// Section5Bound returns the d-dimensional bound sketched in Section 5:
// 4^{d+1-1/d} * d^{1-1/d} * k^{1/d} * n^{d-1}.
func Section5Bound(d, n, k int) float64 {
	df := float64(d)
	return math.Pow(4, df+1-1/df) * math.Pow(df, 1-1/df) *
		math.Pow(float64(k), 1/df) * math.Pow(float64(n), df-1)
}

// FullPermutationBound returns the strengthened bound of the Section-4
// remark for one packet per node (k = n^2): 8n^2, obtained by splitting the
// problem into the two origin-parity classes (which never interact, since
// the parity of coordinate-sum plus time is invariant) and applying
// Theorem 20 with k = n^2/2 to each.
func FullPermutationBound(n int) float64 {
	return 8 * float64(n) * float64(n)
}

// FullLoadBound returns the remark's bound for four packets at every node
// (k = 4n^2): 16n^2, eight times the trivial lower bound.
func FullLoadBound(n int) float64 {
	return 16 * float64(n) * float64(n)
}

// BTSBound returns the [BTS]/[Fe]/[BRS] bound 2(k-1) + dmax for greedy
// routing of k packets with maximal source-destination distance dmax
// (Section 6.1). It is listed for comparison tables; the algorithms here
// are not the [BTS] algorithm, so it is a reference line, not a guarantee.
func BTSBound(k, dmax int) int {
	if k == 0 {
		return 0
	}
	return 2*(k-1) + dmax
}

// SingleTargetLowerBound returns the trivial lower bound for k packets all
// destined to one node: the last of k packets cannot arrive before
// max(dmax, ceil(k/indegree) + something); we report the simple
// dmax and k/indegree components combined as max(dmax, ceil(k/indeg)).
func SingleTargetLowerBound(m *mesh.Mesh, target mesh.NodeID, k, dmax int) int {
	if k == 0 {
		return 0
	}
	indeg := m.Degree(target)
	byCapacity := (k + indeg - 1) / indeg
	if dmax > byCapacity {
		return dmax
	}
	return byCapacity
}

// MaxDistLowerBound returns the universal lower bound: no algorithm routes
// faster than the largest source-destination distance.
func MaxDistLowerBound(m *mesh.Mesh, packets []*sim.Packet) int {
	lb := 0
	for _, p := range packets {
		if d := m.Dist(p.Src, p.Dst); d > lb {
			lb = d
		}
	}
	return lb
}
