package analysis

import (
	"math/rand"
	"testing"

	"hotpotato/internal/core"
	"hotpotato/internal/mesh"
	"hotpotato/internal/sim"
	"hotpotato/internal/workload"
)

// TestSoakLargeMesh is the scale test: a 48x48 mesh under a full random
// permutation (k = 2304) with strict validation and the complete potential
// tracker. Every invariant must hold across a couple of hundred steps and
// millions of potential updates. Skipped in -short mode.
func TestSoakLargeMesh(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	m := mesh.MustNew(2, 48)
	rng := rand.New(rand.NewSource(42))
	packets := workload.Permutation(m, rng)
	e, err := sim.New(m, core.NewRestrictedPriority(), packets, sim.Options{
		Seed:       42,
		Validation: sim.ValidateRestricted,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := core.NewTracker(m, packets, core.TrackerOptions{SelfCheckEvery: 32})
	e.AddObserver(tr)
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != res.Total {
		t.Fatalf("%d/%d delivered", res.Delivered, res.Total)
	}
	if v := tr.Violations(); v.Any() {
		t.Errorf("violations at scale: %s", v.String())
	}
	if b := FullPermutationBound(48); float64(res.Steps) > b {
		t.Errorf("steps %d exceed 8n^2 = %.0f", res.Steps, b)
	}
	if tr.Phi() != 0 {
		t.Errorf("final Phi = %d", tr.Phi())
	}
}

// TestSoakDDim runs a 4-dimensional instance at scale under greedy
// validation. Skipped in -short mode.
func TestSoakDDim(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	m := mesh.MustNew(4, 5) // 625 nodes
	rng := rand.New(rand.NewSource(7))
	packets, err := workload.UniformRandom(m, 1200, rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunTrial(TrialSpec{
		Mesh:        m,
		NewPolicy:   core.NewFewestGoodFirst,
		NewWorkload: func(*rand.Rand) ([]*sim.Packet, error) { return packets, nil },
		Seed:        7,
		Validation:  sim.ValidateGreedy,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Result.Delivered != res.Result.Total {
		t.Fatalf("%d/%d delivered", res.Result.Delivered, res.Result.Total)
	}
	if b := Section5Bound(4, 5, res.Result.Total); float64(res.Result.Steps) > b {
		t.Errorf("steps %d exceed Section-5 bound %.0f", res.Result.Steps, b)
	}
}

// TestSoakDynamicLongRun pushes the injection path: 5000 steps of
// sustained moderate traffic. Skipped in -short mode.
func TestSoakDynamicLongRun(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	m := mesh.MustNew(2, 24)
	e, err := sim.New(m, core.NewRestrictedPriority(), nil, sim.Options{
		Seed:       9,
		Validation: sim.ValidateRestricted,
		MaxSteps:   20000,
	})
	if err != nil {
		t.Fatal(err)
	}
	inj := &soakInjector{until: 5000, rate: 0.05}
	e.SetInjector(inj)
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != res.Total {
		t.Fatalf("%d/%d delivered after drain", res.Delivered, res.Total)
	}
	if res.Total < 10000 {
		t.Fatalf("only %d packets generated", res.Total)
	}
}

type soakInjector struct {
	until int
	rate  float64
}

func (si *soakInjector) Inject(t int, e sim.InjectorHost, rng *rand.Rand) []*sim.Packet {
	if t >= si.until {
		return nil
	}
	var out []*sim.Packet
	m := e.Mesh()
	for node := mesh.NodeID(0); int(node) < m.Size(); node++ {
		if rng.Float64() < si.rate && e.InjectionCapacity(node) > 0 {
			out = append(out, sim.NewPacket(e.NextPacketID(), node, mesh.NodeID(rng.Intn(m.Size()))))
		}
	}
	return out
}

func (si *soakInjector) Exhausted(t int) bool { return t >= si.until }
