package analysis

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"hotpotato/internal/core"
	"hotpotato/internal/mesh"
	"hotpotato/internal/sim"
	"hotpotato/internal/workload"
)

func TestBoundFormulas(t *testing.T) {
	// Theorem 20 is Theorem 17 with d=2, M=4n.
	n, k := 16, 100
	if got, want := Theorem17Bound(2, k, float64(4*n)), Theorem20Bound(n, k); math.Abs(got-want) > 1e-9 {
		t.Errorf("Theorem17Bound(2,k,4n) = %v, Theorem20Bound = %v", got, want)
	}
	if got := Theorem20Bound(16, 100); math.Abs(got-8*math.Sqrt2*16*10) > 1e-9 {
		t.Errorf("Theorem20Bound = %v", got)
	}
	// Section 5 at d=2: 4^{2.5} * 2^{0.5} * sqrt(k) * n = 32*sqrt(2)*n*sqrt(k).
	if got, want := Section5Bound(2, n, k), 32*math.Sqrt2*16*10.0; math.Abs(got-want) > 1e-6 {
		t.Errorf("Section5Bound(2) = %v, want %v", got, want)
	}
	// Monotonicity in each parameter.
	if Section5Bound(3, 8, 100) <= Section5Bound(2, 8, 100) {
		t.Error("Section5Bound not increasing in d on these values")
	}
	if Theorem20Bound(16, 101) <= Theorem20Bound(16, 100) {
		t.Error("Theorem20Bound not increasing in k")
	}
	if FullPermutationBound(10) != 800 {
		t.Errorf("FullPermutationBound(10) = %v", FullPermutationBound(10))
	}
	if FullLoadBound(10) != 1600 {
		t.Errorf("FullLoadBound(10) = %v", FullLoadBound(10))
	}
	if BTSBound(0, 5) != 0 || BTSBound(1, 5) != 5 || BTSBound(10, 7) != 25 {
		t.Error("BTSBound wrong")
	}
}

func TestLowerBounds(t *testing.T) {
	m := mesh.MustNew(2, 8)
	target := m.ID([]int{4, 4})
	if got := SingleTargetLowerBound(m, target, 0, 0); got != 0 {
		t.Errorf("empty single-target LB = %d", got)
	}
	// 9 packets through in-degree 4: capacity bound ceil(9/4) = 3.
	if got := SingleTargetLowerBound(m, target, 9, 2); got != 3 {
		t.Errorf("capacity LB = %d, want 3", got)
	}
	// Distance dominates when dmax is large.
	if got := SingleTargetLowerBound(m, target, 4, 9); got != 9 {
		t.Errorf("distance LB = %d, want 9", got)
	}
	packets := []*sim.Packet{
		sim.NewPacket(0, m.ID([]int{0, 0}), m.ID([]int{7, 7})),
		sim.NewPacket(1, m.ID([]int{1, 1}), m.ID([]int{1, 2})),
	}
	if got := MaxDistLowerBound(m, packets); got != 14 {
		t.Errorf("MaxDistLowerBound = %d, want 14", got)
	}
}

func TestRunTrialBasics(t *testing.T) {
	m := mesh.MustNew(2, 8)
	spec := TrialSpec{
		Mesh:      m,
		NewPolicy: core.NewRestrictedPriority,
		NewWorkload: func(rng *rand.Rand) ([]*sim.Packet, error) {
			return workload.UniformRandom(m, 30, rng)
		},
		Seed:       1,
		Track:      true,
		Validation: sim.ValidateRestricted,
	}
	res, err := RunTrial(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Result.Delivered != 30 {
		t.Errorf("Delivered = %d", res.Result.Delivered)
	}
	if res.DMax <= 0 || res.DMax > m.Diameter() {
		t.Errorf("DMax = %d", res.DMax)
	}
	if res.Phi0 <= 0 || res.Tracker == nil {
		t.Errorf("tracker fields missing: Phi0=%d", res.Phi0)
	}
	if res.Violations.Any() {
		t.Errorf("violations: %s", res.Violations.String())
	}
}

func TestRunTrialValidatesSpec(t *testing.T) {
	if _, err := RunTrial(TrialSpec{}); err == nil {
		t.Error("empty spec accepted")
	}
}

func TestRunTrialsAndHelpers(t *testing.T) {
	m := mesh.MustNew(2, 6)
	spec := TrialSpec{
		Mesh:      m,
		NewPolicy: core.NewRestrictedPriority,
		NewWorkload: func(rng *rand.Rand) ([]*sim.Packet, error) {
			return workload.UniformRandom(m, 10, rng)
		},
		Track: true,
	}
	results, err := RunTrials(spec, 3, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d results", len(results))
	}
	steps := Steps(results)
	if len(steps) != 3 {
		t.Fatalf("Steps() = %v", steps)
	}
	maxv := MaxSteps(results)
	for _, s := range steps {
		if s > maxv {
			t.Errorf("MaxSteps %d < %d", maxv, s)
		}
	}
	if !AllDelivered(results) {
		t.Error("AllDelivered = false")
	}
	if v := TotalViolations(results); v.Any() {
		t.Errorf("violations: %s", v.String())
	}
}

func TestExperimentRegistry(t *testing.T) {
	exps := Experiments()
	wantOrder := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13", "E14", "E15", "E16", "E17", "E18", "E19", "E20", "E21", "E22", "E23", "E24"}
	if len(exps) != len(wantOrder) {
		t.Fatalf("registry has %d experiments, want %d", len(exps), len(wantOrder))
	}
	for i, e := range exps {
		if e.ID != wantOrder[i] {
			t.Errorf("experiment %d = %s, want %s", i, e.ID, wantOrder[i])
		}
		if e.Title == "" || e.Claim == "" || e.Run == nil {
			t.Errorf("experiment %s incomplete", e.ID)
		}
	}
	if _, ok := Lookup("E1"); !ok {
		t.Error("Lookup(E1) failed")
	}
	if _, ok := Lookup("E99"); ok {
		t.Error("Lookup(E99) succeeded")
	}
}

// TestExperimentsQuick runs every experiment in quick mode end to end; this
// is the integration test of the whole reproduction pipeline.
func TestExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("quick experiment suite skipped in -short mode")
	}
	cfg := Config{Quick: true, SeedBase: 1}
	for _, e := range Experiments() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tables, err := e.Run(cfg)
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if len(tables) == 0 {
				t.Fatalf("%s produced no tables", e.ID)
			}
			for _, tb := range tables {
				if tb.Rows() == 0 {
					t.Errorf("%s: table %q empty", e.ID, tb.Title())
				}
				var sb strings.Builder
				if err := tb.WriteText(&sb); err != nil {
					t.Errorf("%s: render: %v", e.ID, err)
				}
				if !strings.Contains(sb.String(), tb.Title()) {
					t.Errorf("%s: rendered table missing title", e.ID)
				}
			}
		})
	}
}

func TestRatioHelper(t *testing.T) {
	if ratio(4, 2) != 2 || ratio(1, 0) != 0 {
		t.Error("ratio helper wrong")
	}
}

// TestExperimentsFull runs every experiment at full size — the exact runs
// EXPERIMENTS.md records. Each runner internally fails on any theorem or
// invariant breach, so this is the complete reproduction contract.
// Skipped in -short mode (takes a few seconds).
func TestExperimentsFull(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment suite skipped in -short mode")
	}
	cfg := Config{Quick: false, SeedBase: 1}
	for _, e := range Experiments() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tables, err := e.Run(cfg)
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if len(tables) == 0 {
				t.Fatalf("%s produced no tables", e.ID)
			}
		})
	}
}

func TestHajekBound(t *testing.T) {
	if HajekBound(0, 4) != 4 || HajekBound(16, 4) != 36 || HajekBound(256, 8) != 520 {
		t.Error("HajekBound wrong")
	}
}
