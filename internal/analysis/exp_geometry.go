package analysis

// E7: the isoperimetric experiment, validating Claim 13 and its proof
// ingredients (inequality (1), Shearer/Loomis-Whitney) on random lattice
// volumes.

import (
	"fmt"
	"math"
	"math/rand"

	"hotpotato/internal/geometry"
	"hotpotato/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "E7",
		Title: "Claim 13: isoperimetric inequality on lattice volumes",
		Claim: "Any d-dimensional volume V of unit cubes has surface >= 2d * V^{(d-1)/d}; the proof chain (surface >= 2*sum of projections, Shearer entropy, Loomis-Whitney) holds link by link.",
		Run:   runE7,
	})
}

func runE7(cfg Config) ([]*stats.Table, error) {
	trialsPer := cfg.trials(200, 40)
	rng := rand.New(rand.NewSource(cfg.SeedBase + 7))
	tb := stats.NewTable(
		"E7 (Claim 13): random lattice volumes",
		"d", "shape", "volumes", "min_surface/bound", "claim13_viol", "ineq1_viol", "shearer_viol", "loomis_whitney_viol")
	for d := 1; d <= 5; d++ {
		for _, shape := range []string{"blob", "boxes", "cube", "compact"} {
			minRatio := math.Inf(1)
			var c13, i1, sh, lw int
			count := trialsPer
			if shape == "cube" {
				count = 6 // one per side length; the equality family
			}
			if shape == "compact" {
				count = 40 // sizes 1..40: the greedy low-surface family
			}
			for trial := 0; trial < count; trial++ {
				var v *geometry.Volume
				var err error
				switch shape {
				case "blob":
					v, err = geometry.RandomBlob(d, 1+rng.Intn(400), rng)
				case "boxes":
					v, err = geometry.RandomBoxes(d, 1+rng.Intn(6), 4, rng)
				case "cube":
					sides := make([]int, d)
					for i := range sides {
						sides[i] = trial + 1
					}
					v, err = geometry.Box(sides...)
				case "compact":
					v, err = geometry.CompactVolume(d, trial+1)
				}
				if err != nil {
					return nil, err
				}
				if v.Size() == 0 {
					continue
				}
				surface, bound, ok := v.CheckClaim13()
				if !ok {
					c13++
				}
				if bound > 0 {
					if r := float64(surface) / bound; r < minRatio {
						minRatio = r
					}
				}
				if _, _, ok := v.CheckProjectionSurface(); !ok {
					i1++
				}
				if lhs, rhs := v.ShearerEntropy(); lhs > rhs+1e-9 {
					sh++
				}
				if _, _, ok := v.CheckLoomisWhitney(); !ok {
					lw++
				}
			}
			if c13+i1+sh+lw > 0 {
				return nil, fmt.Errorf("E7: isoperimetric theorem violated (d=%d %s): c13=%d ineq1=%d shearer=%d lw=%d",
					d, shape, c13, i1, sh, lw)
			}
			tb.AddRow(d, shape, count, minRatio, c13, i1, sh, lw)
		}
	}
	tb.AddNote("cubes are the equality case: min ratio 1.000 expected in the cube rows")
	tb.AddNote("all violation columns are expected to be zero (these are theorems)")
	return []*stats.Table{tb}, nil
}
