package analysis

// E16: adversarial tightness probing. The postscript (Section 6.1, [BCS])
// reports worst-case permutations forcing Omega(n^2) steps for algorithms
// that prefer restricted packets — i.e. Theorem 20's n*sqrt(k) analysis is
// tight for the class at k = n^2. Random permutations finish in O(n) here
// (E8), far from the bound. This experiment probes the gap with a local
// search: hill-climb over permutations (swap two destinations, keep the
// change if the deterministic routing time grows) and report how much
// adversarial structure inflates routing time over random instances.

import (
	"fmt"
	"math/rand"

	"hotpotato/internal/core"
	"hotpotato/internal/mesh"
	"hotpotato/internal/sim"
	"hotpotato/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "E16",
		Title: "Adversarial search: hill-climbing permutations against restricted priority",
		Claim: "Worst-case instances are much slower than random ones ([BCS] constructs Omega(n^2) permutations for this class); even a generic local search widens the measured/bound ratio noticeably, showing the analysis gap is about instances, not slack in the simulation.",
		Run:   runE16,
	})
}

// routePermutation routes the permutation perm (perm[i] = destination of
// the packet originating at node i) under the deterministic section-4
// policy and returns the routing time.
func routePermutation(m *mesh.Mesh, perm []int) (int, error) {
	packets := make([]*sim.Packet, len(perm))
	for i, dst := range perm {
		packets[i] = sim.NewPacket(i, mesh.NodeID(i), mesh.NodeID(dst))
	}
	e, err := sim.New(m, core.NewRestrictedPriorityDeterministic(), packets, sim.Options{
		Validation: sim.ValidateRestricted,
	})
	if err != nil {
		return 0, err
	}
	res, err := e.Run()
	if err != nil {
		return 0, err
	}
	if res.Delivered != res.Total {
		return 0, fmt.Errorf("analysis: adversarial instance not fully delivered")
	}
	return res.Steps, nil
}

func runE16(cfg Config) ([]*stats.Table, error) {
	ns := []int{6, 8, 10}
	iters := 1200
	if cfg.Quick {
		ns = []int{6}
		iters = 200
	}
	tb := stats.NewTable(
		"E16 (adversarial search): hill-climbed permutations vs random, deterministic restricted-priority",
		"n", "random_steps", "adversarial_steps", "gain", "bound_8n2", "adv/bound", "iterations")
	for _, n := range ns {
		m, err := mesh.New(2, n)
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(cfg.SeedBase + int64(n)))

		// Baseline: the best (slowest) of a few random permutations.
		randomBest := 0
		perm := rng.Perm(m.Size())
		for trial := 0; trial < 5; trial++ {
			cand := rng.Perm(m.Size())
			steps, err := routePermutation(m, cand)
			if err != nil {
				return nil, err
			}
			if steps > randomBest {
				randomBest = steps
				perm = cand
			}
		}

		// Hill climb: swap two destinations, keep improvements.
		best, err := routePermutation(m, perm)
		if err != nil {
			return nil, err
		}
		for it := 0; it < iters; it++ {
			i, j := rng.Intn(len(perm)), rng.Intn(len(perm))
			if i == j {
				continue
			}
			perm[i], perm[j] = perm[j], perm[i]
			steps, err := routePermutation(m, perm)
			if err != nil {
				return nil, err
			}
			if steps >= best {
				best = steps
			} else {
				perm[i], perm[j] = perm[j], perm[i] // revert
			}
		}
		bound := FullPermutationBound(n)
		tb.AddRow(n, randomBest, best, float64(best)/float64(randomBest),
			bound, float64(best)/bound, iters)
	}
	tb.AddNote("search target: routing time of the deterministic class member (fixed tie-breaks make the objective deterministic)")
	tb.AddNote("[BCS]'s hand construction reaches Theta(n^2); generic local search shows the direction without matching it")
	return []*stats.Table{tb}, nil
}
