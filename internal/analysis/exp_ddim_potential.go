package analysis

// E18: reconstructing the Section-5 potential. The paper gives only the
// idea ("each packet has a load of spare potential from which it throws as
// it advances. The amount ... is chosen so that it can compensate for all
// the packets it may deflect") and defers the construction to [Hal]/[BHS].
// This experiment maps the design space empirically on 3-dimensional
// traffic: for each candidate rule (restricted-based 2-D rules vs
// class-based burn-on-every-advance), burn rate and spare size, it counts
// Property-8 and range failures per packet-move. Zero-violation cells are
// candidate witnesses for a valid d = 3 potential on the tested traffic;
// cells that fail show which ingredient (burn amount vs spare size) the
// thesis construction must supply.

import (
	"fmt"
	"math/rand"

	"hotpotato/internal/core"
	"hotpotato/internal/mesh"
	"hotpotato/internal/sim"
	"hotpotato/internal/stats"
	"hotpotato/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "E18",
		Title: "Section-5 potential reconstruction: burn/spare design space at d = 3",
		Claim: "The 2-D Figure-6 rules applied verbatim fail (rarely) in dense 3-D traffic; larger burns need proportionally larger spares to keep phi in range; the experiment maps which (rule, burn, spare) combinations satisfy Property 8 empirically.",
		Run:   runE18,
	})
}

func runE18(cfg Config) ([]*stats.Table, error) {
	n := 6
	trials := cfg.trials(4, 2)
	if cfg.Quick {
		n = 5
	}
	m, err := mesh.New(3, n)
	if err != nil {
		return nil, err
	}
	k := m.Size() // dense: one packet per node on average

	type variant struct {
		name string
		opts core.TrackerOptions
	}
	variants := []variant{
		{"2D-rules burn=2 spare=2n", core.TrackerOptions{}},
		{"2D-rules burn=2 spare=6n", core.TrackerOptions{Spare0: 6 * n}},
		{"2D-rules burn=4 spare=4n", core.TrackerOptions{Burn: 4, Spare0: 4 * n}},
		{"2D-rules burn=4 spare=6n", core.TrackerOptions{Burn: 4, Spare0: 6 * n}},
		{"2D-rules burn=6 spare=8n", core.TrackerOptions{Burn: 6, Spare0: 8 * n}},
		{"class burn=2 spare=2n", core.TrackerOptions{BurnAll: true}},
		{"class burn=2 spare=2dn", core.TrackerOptions{BurnAll: true, Spare0: 2 * 3 * n}},
		{"class burn=4 spare=4dn", core.TrackerOptions{BurnAll: true, Burn: 4, Spare0: 4 * 3 * n}},
		{"class burn=6 spare=8dn", core.TrackerOptions{BurnAll: true, Burn: 6, Spare0: 8 * 3 * n}},
	}

	tb := stats.NewTable(
		fmt.Sprintf("E18 (Section-5 potential design space): fewest-good-first on the %d^3 mesh, k=%d", n, k),
		"rule", "M", "prop8/1k_moves", "phi_range/1k_moves", "cor10_viol", "min_phi", "min_spare")
	for _, v := range variants {
		var prop8, phiRange, cor10 int
		var moves int64
		minPhi, minSpare := 1<<30, 1<<30
		for trial := 0; trial < trials; trial++ {
			seed := cfg.SeedBase + int64(trial)
			rng := rand.New(rand.NewSource(seed))
			packets, err := workload.UniformRandom(m, k, rng)
			if err != nil {
				return nil, err
			}
			e, err := sim.New(m, core.NewFewestGoodFirst(), packets, sim.Options{
				Seed:       seed + 1,
				Validation: sim.ValidateGreedy,
			})
			if err != nil {
				return nil, err
			}
			tr := core.NewTracker(m, packets, v.opts)
			e.AddObserver(tr)
			res, err := e.Run()
			if err != nil {
				return nil, err
			}
			viol := tr.Violations()
			prop8 += viol.Property8
			phiRange += viol.PhiRange
			cor10 += viol.Corollary10
			moves += res.TotalHops
			if tr.MinPhi() < minPhi {
				minPhi = tr.MinPhi()
			}
			if tr.MinSpare() < minSpare {
				minSpare = tr.MinSpare()
			}
		}
		mBound := 0
		{
			tr := core.NewTracker(m, nil, v.opts)
			mBound = tr.M()
		}
		per1k := func(c int) float64 { return 1000 * float64(c) / float64(moves) }
		tb.AddRow(v.name, mBound, per1k(prop8), per1k(phiRange), cor10, minPhi, minSpare)
	}
	tb.AddNote("%d trials per row on identical instances; rates per 1000 packet-moves", trials)
	tb.AddNote("2D-rules = Figure 6 verbatim (only restricted type-A packets burn, with the switch)")
	tb.AddNote("class = Section-5 sketch (every advancing packet burns Burn, deflected packets reset)")
	return []*stats.Table{tb}, nil
}
