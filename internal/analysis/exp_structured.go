package analysis

// E17: structured vs greedy — the paper's introductory argument. Structured
// hot-potato algorithms gain worst-case guarantees by prespecifying routes,
// but a packet that originates next to its destination may still be sent
// across the network, and the algorithm is insensitive to light loads
// (Section 1: "overstructuring"). Greedy algorithms exploit locality and
// load by construction.

import (
	"fmt"
	"math/rand"

	"hotpotato/internal/core"
	"hotpotato/internal/mesh"
	"hotpotato/internal/sim"
	"hotpotato/internal/stats"
	"hotpotato/internal/structured"
	"hotpotato/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "E17",
		Title: "Overstructuring: greedy vs Valiant-style two-phase structured routing",
		Claim: "Structured routing is insensitive to locality and load: on distance-bounded and sparse traffic it pays Theta(n) detours where greedy finishes in ~dmax steps; on dense uniform traffic the two meet (randomized interchange is what structure buys).",
		Run:   runE17,
	})
}

func runE17(cfg Config) ([]*stats.Table, error) {
	n := 16
	if cfg.Quick {
		n = 10
	}
	m, err := mesh.New(2, n)
	if err != nil {
		return nil, err
	}
	trials := cfg.trials(5, 2)

	wls := []struct {
		name string
		mk   func(rng *rand.Rand) ([]*sim.Packet, error)
	}{
		{"local-r2", func(rng *rand.Rand) ([]*sim.Packet, error) { return workload.LocalRandom(m, n*n/2, 2, rng) }},
		{"local-r4", func(rng *rand.Rand) ([]*sim.Packet, error) { return workload.LocalRandom(m, n*n/2, 4, rng) }},
		{"sparse-k8", func(rng *rand.Rand) ([]*sim.Packet, error) { return workload.UniformRandom(m, 8, rng) }},
		{"uniform-dense", func(rng *rand.Rand) ([]*sim.Packet, error) { return workload.UniformRandom(m, n*n, rng) }},
		{"permutation", func(rng *rand.Rand) ([]*sim.Packet, error) { return workload.Permutation(m, rng), nil }},
	}
	pols := []struct {
		name string
		mk   func() sim.Policy
		lvl  sim.ValidationLevel
	}{
		{"greedy (restricted-priority)", core.NewRestrictedPriority, sim.ValidateRestricted},
		{"structured (two-phase)", structured.NewTwoPhase, sim.ValidateBasic},
	}

	tb := stats.NewTable(
		fmt.Sprintf("E17 (overstructuring): %dx%d mesh", n, n),
		"workload", "policy", "k", "dmax", "steps_mean", "steps_max", "hops/packet")
	for _, wl := range wls {
		for _, pol := range pols {
			results, err := RunTrials(TrialSpec{
				Mesh:        m,
				NewPolicy:   pol.mk,
				NewWorkload: wl.mk,
				Validation:  pol.lvl,
			}, trials, cfg.SeedBase)
			if err != nil {
				return nil, err
			}
			if !AllDelivered(results) {
				return nil, fmt.Errorf("E17: %s on %s left packets undelivered", pol.name, wl.name)
			}
			sm := stats.SummarizeInts(Steps(results))
			var hops, k float64
			dmax := 0
			for _, r := range results {
				hops += float64(r.Result.TotalHops)
				k += float64(r.Result.Total)
				if r.DMax > dmax {
					dmax = r.DMax
				}
			}
			tb.AddRow(wl.name, pol.name, int(k/float64(len(results))), dmax,
				sm.Mean, int(sm.Max), hops/k)
		}
	}
	tb.AddNote("%d trials per row; hops/packet includes structured detours via random intermediates", trials)
	tb.AddNote("the structured scheme stays hot-potato legal but is not greedy toward real destinations (ValidateBasic)")
	return []*stats.Table{tb}, nil
}
