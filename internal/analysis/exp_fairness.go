package analysis

// E21: fairness and starvation under continuous load. Greediness bounds
// the batch makespan, but individual packets can still be treated very
// unequally: nearest-first starves distant packets, oldest-first is
// age-fair. The experiment measures the tail of the in-network delay
// distribution per priority rule — the per-packet side of the livelock
// story (a starved packet is a local, transient livelock).

import (
	"fmt"

	"hotpotato/internal/core"
	"hotpotato/internal/mesh"
	"hotpotato/internal/routing"
	"hotpotato/internal/sim"
	"hotpotato/internal/stats"
	"hotpotato/internal/traffic"
)

func init() {
	register(Experiment{
		ID:    "E21",
		Title: "Fairness: per-packet delay tails under continuous load, by priority rule",
		Claim: "All greedy rules share the mean, but tails differ: age priority (oldest-first) keeps the maximum in-network time close to p99, while nearest-first stretches the tail (distant packets keep losing ties) - the starvation phenomenon that age/priority schemes in [ZA] address.",
		Run:   runE21,
	})
}

func runE21(cfg Config) ([]*stats.Table, error) {
	n := 16
	genSteps := 600
	if cfg.Quick {
		n = 10
		genSteps = 200
	}
	m, err := mesh.New(2, n)
	if err != nil {
		return nil, err
	}
	rate := 0.25 // just past the knee: contention every step

	policies := []struct {
		name string
		mk   func() sim.Policy
	}{
		{"greedy-oldest-first", routing.NewOldestFirst},
		{"restricted-priority", core.NewRestrictedPriority},
		{"greedy-random", routing.NewRandomGreedy},
		{"greedy-nearest-first", routing.NewNearestFirst},
		{"greedy-farthest-first", routing.NewFarthestFirst},
	}

	tb := stats.NewTable(
		fmt.Sprintf("E21 (fairness): %dx%d mesh, rate %.2f/node, %d generation steps",
			n, n, rate, genSteps),
		"policy", "delivered", "net_mean", "net_p90", "net_p99", "net_max", "max/p99")
	for _, pol := range policies {
		src, err := traffic.NewBernoulli(rate, genSteps)
		if err != nil {
			return nil, err
		}
		e, err := sim.New(m, pol.mk(), nil, sim.Options{
			Seed:       cfg.SeedBase,
			Validation: sim.ValidateGreedy,
			MaxSteps:   genSteps * 100,
		})
		if err != nil {
			return nil, err
		}
		e.SetInjector(src)
		res, err := e.Run()
		if err != nil {
			return nil, err
		}
		// In-network time only (injection to arrival), isolating routing
		// fairness from source queueing.
		var net []float64
		for _, p := range e.Packets() {
			if p.Arrived() {
				net = append(net, float64(p.Delay()))
			}
		}
		s := stats.Summarize(net)
		tailRatio := 0.0
		if s.P99 > 0 {
			tailRatio = s.Max / s.P99
		}
		tb.AddRow(pol.name, res.Delivered, s.Mean, s.P90, s.P99, int(s.Max), tailRatio)
	}
	tb.AddNote("net = steps from injection to arrival (source queueing excluded)")
	tb.AddNote("max/p99 is the starvation indicator: a rule that keeps losing ties for the same packets stretches it")
	return []*stats.Table{tb}, nil
}
