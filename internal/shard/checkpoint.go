package shard

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"hotpotato/internal/checkpoint"
	"hotpotato/internal/sim"
)

// CheckpointVersion is the schema version of the sharded checkpoint types.
// It rides inside the HPCK payload (the envelope has its own container
// version) and is enforced on restore.
const CheckpointVersion = 1

// manifestName is the atomic commit point of a checkpoint directory: the
// step's per-shard files are written first into their own subdirectory,
// then the manifest is renamed into place. A crash at any point leaves
// either the previous complete checkpoint or the new one — never a torn
// mix.
const manifestName = "MANIFEST.hpck"

// Manifest is the coordinator's share of a coordinated checkpoint: the
// run configuration (guarded on restore), global progress counters, the
// livelock verdict, and every finalized packet. The per-shard files hold
// only live packets, so the manifest plus the parts reconstruct the full
// packet population.
type Manifest struct {
	Version int `json:"version"`

	// Configuration guards: restoring into a differently-configured engine
	// fails loudly. Grid is recorded for information only — a checkpoint
	// written by a 4x2 run restores into a 2x2 or 1x1 engine (the parts are
	// re-partitioned by owner), which is what lets a resumed job change its
	// decomposition.
	MeshDim    int                 `json:"mesh_dim"`
	MeshSide   int                 `json:"mesh_side"`
	MeshWrap   bool                `json:"mesh_wrap"`
	PolicyName string              `json:"policy"`
	Seed       int64               `json:"seed"`
	MaxSteps   int                 `json:"max_steps"`
	Validation sim.ValidationLevel `json:"validation"`
	DetectLive bool                `json:"detect_livelock"`
	Grid       string              `json:"grid"`

	// Progress.
	Time        int  `json:"time"`
	LastArrival int  `json:"last_arrival"`
	NextID      int  `json:"next_id"`
	Live        int  `json:"live"`
	Livelocked  bool `json:"livelocked"`
	Shards      int  `json:"shards"`

	// Counters.
	TotalDeflections int64 `json:"total_deflections"`
	TotalHops        int64 `json:"total_hops"`
	MaxNodeLoad      int   `json:"max_node_load"`
	Reroutes         int64 `json:"reroutes"`
	Recoveries       int   `json:"recoveries"`

	// Injector state: present iff an injector was installed. InjRNG is the
	// dedicated injection SplitMix64 stream; injectors with internal state
	// (source backlogs, renewal clocks, token buckets) participate via
	// sim.CheckpointableInjector and their opaque bytes ride along here, so
	// a resumed arrival-driven run is bit-identical (mid-burst included).
	HasInjector   bool   `json:"has_injector,omitempty"`
	InjectorState []byte `json:"injector_state,omitempty"`
	InjRNG        uint64 `json:"inj_rng,omitempty"`

	// Seen is the livelock detector's configuration-hash history, sorted by
	// first-seen step for reproducible encodings.
	Seen []sim.SeenState `json:"seen,omitempty"`

	// Finalized holds every packet no longer in the network (arrived), so
	// resumed runs report complete hop/deflection distributions.
	Finalized []sim.PacketState `json:"finalized,omitempty"`

	// StepDir names the subdirectory holding this checkpoint's per-shard
	// files; set by SaveDir, used by LoadDir.
	StepDir string `json:"step_dir,omitempty"`
}

// ShardPart is one shard's share of a coordinated checkpoint: the live
// packets it owned, in queue order over its sorted active nodes — i.e. in
// the exact order a restore must re-enqueue them.
type ShardPart struct {
	Version int               `json:"version"`
	Index   int               `json:"index"`
	Time    int               `json:"time"`
	Packets []sim.PacketState `json:"packets,omitempty"`
}

// Checkpoint is a complete coordinated checkpoint: captured at a step
// barrier, so every shard's part is from the same global time.
type Checkpoint struct {
	Manifest Manifest
	Parts    []ShardPart
}

// ErrBadCheckpoint is returned when a checkpoint cannot be restored into
// the engine — wrong configuration, inconsistent parts, or corrupt state.
var ErrBadCheckpoint = errors.New("shard: invalid checkpoint")

// Checkpoint captures the engine's full state between steps. The capture is
// cheap relative to a step (it copies packet structs, not the mesh or
// tables) and the result is independent of the engine's grid: it can be
// saved with SaveDir, restored into an engine with any decomposition, or
// kept in memory as the rollback point for panic recovery. It fails only
// when an installed CheckpointableInjector cannot serialize its state.
func (e *Engine) Checkpoint() (*Checkpoint, error) {
	m := Manifest{
		Version:          CheckpointVersion,
		MeshDim:          e.mesh.Dim(),
		MeshSide:         e.mesh.Side(),
		MeshWrap:         e.mesh.Wrap(),
		PolicyName:       e.policy.Name(),
		Seed:             e.opts.Seed,
		MaxSteps:         e.opts.MaxSteps,
		Validation:       e.opts.Validation,
		DetectLive:       e.opts.DetectLivelock,
		Grid:             e.opts.Grid.String(),
		Time:             e.time,
		LastArrival:      e.lastArrival,
		NextID:           e.nextID,
		Live:             e.live,
		Livelocked:       e.livelock,
		Shards:           len(e.shards),
		TotalDeflections: e.totalDeflections,
		TotalHops:        e.totalHops,
		MaxNodeLoad:      e.maxNodeLoad,
		Reroutes:         e.reroutes,
		Recoveries:       e.recoveries,
	}
	if e.seen != nil {
		m.Seen = make([]sim.SeenState, 0, len(e.seen))
		for h, t := range e.seen {
			m.Seen = append(m.Seen, sim.SeenState{Hash: h, Time: t})
		}
		sort.Slice(m.Seen, func(i, j int) bool { return m.Seen[i].Time < m.Seen[j].Time })
	}
	if e.injector != nil {
		m.HasInjector = true
		m.InjRNG = e.injSrc.State()
		if ci, ok := e.injector.(sim.CheckpointableInjector); ok {
			data, err := ci.SnapshotState()
			if err != nil {
				return nil, fmt.Errorf("shard: checkpoint injector state: %w", err)
			}
			m.InjectorState = data
		}
	}
	for _, p := range e.packets {
		if p.Arrived() {
			m.Finalized = append(m.Finalized, sim.CapturePacket(p))
		}
	}
	ck := &Checkpoint{Manifest: m, Parts: make([]ShardPart, len(e.shards))}
	for i, s := range e.shards {
		part := ShardPart{Version: CheckpointVersion, Index: i, Time: e.time}
		for _, l := range s.active {
			for _, p := range s.byLocal[l] {
				part.Packets = append(part.Packets, sim.CapturePacket(p))
			}
		}
		ck.Parts[i] = part
	}
	return ck, nil
}

// Restore loads a checkpoint into a freshly-built engine (no packets, time
// zero) whose mesh, policy, seed and validation settings match the
// checkpoint's manifest. The engine's grid need not match the writer's:
// live packets are re-partitioned by current ownership, and because queue
// order within each node is preserved verbatim from the parts, the resumed
// run is bit-identical to the uninterrupted one regardless of either
// decomposition.
func (e *Engine) Restore(ck *Checkpoint) error {
	if e.time != 0 || len(e.packets) != 0 {
		return fmt.Errorf("%w: Restore needs a fresh engine (built with no packets)", ErrBadCheckpoint)
	}
	return e.loadCheckpoint(ck)
}

// loadCheckpoint resets every shard and loads the checkpoint's state. Used
// by Restore and by in-run panic recovery (where the configuration guards
// hold trivially).
func (e *Engine) loadCheckpoint(ck *Checkpoint) error {
	m := &ck.Manifest
	switch {
	case m.Version > CheckpointVersion:
		return fmt.Errorf("%w: schema v%d, this build reads up to v%d", ErrBadCheckpoint, m.Version, CheckpointVersion)
	case m.MeshDim != e.mesh.Dim() || m.MeshSide != e.mesh.Side() || m.MeshWrap != e.mesh.Wrap():
		return fmt.Errorf("%w: mesh mismatch: checkpoint dim=%d side=%d wrap=%v, engine %s",
			ErrBadCheckpoint, m.MeshDim, m.MeshSide, m.MeshWrap, e.mesh)
	case m.PolicyName != e.policy.Name():
		return fmt.Errorf("%w: policy mismatch: checkpoint %q, engine %q", ErrBadCheckpoint, m.PolicyName, e.policy.Name())
	case m.Seed != e.opts.Seed:
		return fmt.Errorf("%w: seed mismatch: checkpoint %d, engine %d", ErrBadCheckpoint, m.Seed, e.opts.Seed)
	case m.Validation != e.opts.Validation:
		return fmt.Errorf("%w: validation mismatch: checkpoint %d, engine %d", ErrBadCheckpoint, m.Validation, e.opts.Validation)
	case m.DetectLive != e.opts.DetectLivelock:
		return fmt.Errorf("%w: livelock detection mismatch", ErrBadCheckpoint)
	case m.Shards != len(ck.Parts):
		return fmt.Errorf("%w: manifest lists %d shards, checkpoint has %d parts", ErrBadCheckpoint, m.Shards, len(ck.Parts))
	case (e.injector != nil) != m.HasInjector:
		return fmt.Errorf("%w: injector installed=%v, checkpoint has_injector=%v", ErrBadCheckpoint, e.injector != nil, m.HasInjector)
	}

	for _, s := range e.shards {
		s.clearQueues()
		s.lastArrival = 0
		s.hops, s.deflections, s.arrivals = 0, 0, 0
		s.router.Reroutes = 0
		s.router.MaxNodeLoad = 0
	}

	packets := make([]*sim.Packet, 0, len(m.Finalized))
	live := 0
	admit := func(ps *sim.PacketState, wantLive bool) (*sim.Packet, error) {
		p := ps.Packet()
		if err := e.mesh.CheckID(p.Node); err != nil {
			return nil, fmt.Errorf("%w: packet %d: %v", ErrBadCheckpoint, p.ID, err)
		}
		if p.ID >= m.NextID {
			return nil, fmt.Errorf("%w: packet id %d >= next id %d", ErrBadCheckpoint, p.ID, m.NextID)
		}
		if wantLive == p.Arrived() {
			return nil, fmt.Errorf("%w: packet %d in the wrong section (arrived=%v)", ErrBadCheckpoint, p.ID, p.Arrived())
		}
		packets = append(packets, p)
		return p, nil
	}
	for i := range m.Finalized {
		if _, err := admit(&m.Finalized[i], false); err != nil {
			return err
		}
	}
	for i := range ck.Parts {
		part := &ck.Parts[i]
		if part.Time != m.Time {
			return fmt.Errorf("%w: part %d is from step %d, manifest from step %d (torn checkpoint)",
				ErrBadCheckpoint, part.Index, part.Time, m.Time)
		}
		for j := range part.Packets {
			p, err := admit(&part.Packets[j], true)
			if err != nil {
				return err
			}
			e.shards[e.pt.owner(p.Node)].enqueue(p)
			live++
		}
	}
	if live != m.Live {
		return fmt.Errorf("%w: manifest says %d live packets, parts carry %d", ErrBadCheckpoint, m.Live, live)
	}
	for _, s := range e.shards {
		for _, l := range s.active {
			if deg := s.sub.DegreeLocal(int(l)); len(s.byLocal[l]) > deg {
				return fmt.Errorf("%w: node %d holds %d packets, out-degree %d",
					ErrBadCheckpoint, s.sub.GlobalID(int(l)), len(s.byLocal[l]), deg)
			}
		}
		s.sortActive()
	}

	e.packets = packets
	e.live = live
	e.time = m.Time
	e.lastArrival = m.LastArrival
	e.nextID = m.NextID
	e.livelock = m.Livelocked
	e.totalDeflections = m.TotalDeflections
	e.totalHops = m.TotalHops
	e.maxNodeLoad = m.MaxNodeLoad
	e.reroutes = m.Reroutes
	e.deadlineExceeded = false
	if e.livelockable {
		e.seen = make(map[uint64]int, len(m.Seen))
		for _, sn := range m.Seen {
			e.seen[sn.Hash] = sn.Time
		}
	}
	if m.HasInjector {
		e.injSrc.SetState(m.InjRNG)
		if len(m.InjectorState) > 0 {
			ci, ok := e.injector.(sim.CheckpointableInjector)
			if !ok {
				return fmt.Errorf("%w: checkpoint carries injector state but injector %T cannot restore it", ErrBadCheckpoint, e.injector)
			}
			if err := ci.RestoreState(m.InjectorState); err != nil {
				return fmt.Errorf("shard: restore injector state: %w", err)
			}
		}
	}
	return nil
}

// SaveDir writes the checkpoint into dir (created if missing) with the
// torn-write-safe layout: the per-shard parts go into a step-<t>
// subdirectory, each file written atomically via the checkpoint codec, and
// only then is the manifest atomically renamed into place as the commit
// point. Older step subdirectories are pruned after the commit, so a
// directory holds at most the committed checkpoint plus one in-flight one.
func SaveDir(dir string, ck *Checkpoint, format checkpoint.Format) error {
	stepDir := fmt.Sprintf("step-%010d", ck.Manifest.Time)
	sub := filepath.Join(dir, stepDir)
	if err := os.MkdirAll(sub, 0o755); err != nil {
		return fmt.Errorf("shard: checkpoint dir: %w", err)
	}
	for i := range ck.Parts {
		path := filepath.Join(sub, partName(ck.Parts[i].Index))
		if err := checkpoint.SaveValue(path, &ck.Parts[i], format); err != nil {
			return err
		}
	}
	m := ck.Manifest
	m.StepDir = stepDir
	if err := checkpoint.SaveValue(filepath.Join(dir, manifestName), &m, format); err != nil {
		return err
	}
	// Best-effort prune of superseded step directories.
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	for _, ent := range entries {
		if ent.IsDir() && strings.HasPrefix(ent.Name(), "step-") && ent.Name() != stepDir {
			os.RemoveAll(filepath.Join(dir, ent.Name()))
		}
	}
	return nil
}

// HasCheckpoint reports whether dir holds a committed checkpoint — one
// LoadDir would find a manifest for. A directory whose writer died between
// the part files and the manifest rename reads as absent.
func HasCheckpoint(dir string) bool {
	_, err := os.Stat(filepath.Join(dir, manifestName))
	return err == nil
}

// LoadDir reads the committed checkpoint from a SaveDir directory.
func LoadDir(dir string) (*Checkpoint, error) {
	var m Manifest
	if err := checkpoint.LoadValue(filepath.Join(dir, manifestName), &m); err != nil {
		return nil, err
	}
	stepDir := m.StepDir
	if stepDir == "" {
		stepDir = fmt.Sprintf("step-%010d", m.Time)
	}
	ck := &Checkpoint{Manifest: m, Parts: make([]ShardPart, m.Shards)}
	for i := 0; i < m.Shards; i++ {
		path := filepath.Join(dir, stepDir, partName(i))
		if err := checkpoint.LoadValue(path, &ck.Parts[i]); err != nil {
			return nil, err
		}
		if ck.Parts[i].Index != i {
			return nil, fmt.Errorf("%w: %s holds part %d", ErrBadCheckpoint, path, ck.Parts[i].Index)
		}
	}
	return ck, nil
}

func partName(index int) string { return fmt.Sprintf("shard-%03d.hpck", index) }
