package shard

import (
	"fmt"
	"slices"

	"hotpotato/internal/mesh"
	"hotpotato/internal/sim"
)

// This file is the package's distributed surface: the pieces a cross-process
// runner (internal/dshard) shares with the in-process Engine so a
// distributed run is bit-identical to a single-engine one. A Partition maps
// global nodes to shard indices for a coordinator that must split packet
// populations itself, and a Node hosts a subset of the grid's shards inside
// one worker process — same shardState, same route, same k-way merge — with
// every cross-shard move surfaced as an explicit Bucket instead of an
// in-memory mailbox, so the halo exchange can travel over a wire.

// Partition is the exported node→shard ownership map of a PxQ decomposition
// over a mesh: the same banded split the Engine uses, for coordinators that
// partition packet populations or checkpoint parts across workers.
type Partition struct {
	pt *partition
}

// NewPartition computes the partition of m under grid g. The mesh must be
// 2-dimensional and the grid must fit its side, exactly as for Engine.
func NewPartition(m *mesh.Mesh, g Grid) (*Partition, error) {
	pt, err := newPartition(m, g)
	if err != nil {
		return nil, err
	}
	return &Partition{pt: pt}, nil
}

// Grid returns the decomposition.
func (p *Partition) Grid() Grid { return p.pt.grid }

// Count returns the number of shards, P*Q.
func (p *Partition) Count() int { return p.pt.grid.Count() }

// Owner returns the index of the shard owning the global node.
func (p *Partition) Owner(id mesh.NodeID) int { return p.pt.owner(id) }

// Bounds returns the rectangle of shard idx.
func (p *Partition) Bounds(idx int) (x0, y0, w, h int) {
	return p.pt.bounds(idx%p.pt.grid.P, idx/p.pt.grid.P)
}

// Side returns the mesh side the partition was computed for.
func (p *Partition) Side() int { return p.pt.side }

// Bucket is one halo transfer: the moves leaving shard From for shard To in
// one step, in (source node, queue position) order — the same receiver-keyed
// egress bucket the in-process engine exchanges through shared memory,
// surfaced so it can be serialized. Moves reference live packets; a bucket
// is valid until its producing shard routes again.
type Bucket struct {
	From, To int
	Moves    []sim.Move
}

// ApplyReport aggregates what one Node.Apply did: the per-step counter
// deltas the coordinator folds into its global totals, and the packets that
// reached their destinations this step (captured post-arrival, so the
// coordinator owns the finalized population).
type ApplyReport struct {
	Hops        int64
	Deflections int64
	Arrivals    int
	LastArrival int
	Reroutes    int64
	MaxNodeLoad int
	Finalized   []sim.PacketState
}

// Node hosts a subset of a PxQ decomposition's shards inside one worker
// process. It steps them sequentially — cross-process parallelism is the
// point, not more goroutines — with the exact shardState machinery the
// Engine runs, so determinism is inherited rather than re-proven. All
// cross-shard moves, including those between two shards hosted by the same
// Node, surface as Buckets and are expected back as ingress: the transport
// above decides how they travel.
//
// A Node is single-goroutine state. The step protocol is Route(t) → the
// caller exchanges buckets → Apply(t); LoadShard (re)initializes a shard
// between steps.
type Node struct {
	m      *mesh.Mesh
	pt     *partition
	owned  []int
	shards map[int]*shardState

	finalized []*sim.Packet
}

// NewNode builds a node hosting the given shard indices of grid g over mesh
// m. The rules are Engine's: 2-dimensional mesh, grid fitting the side, and
// a ClonablePolicy when the node hosts more than one shard (each shard
// routes with its own clone, exactly as the Engine's goroutines do).
func NewNode(m *mesh.Mesh, policy sim.Policy, g Grid, owned []int, seed int64, validation sim.ValidationLevel) (*Node, error) {
	if m == nil {
		return nil, fmt.Errorf("%w: nil mesh", sim.ErrBadInjection)
	}
	if policy == nil {
		return nil, fmt.Errorf("%w: nil policy", sim.ErrBadInjection)
	}
	g = g.norm()
	pt, err := newPartition(m, g)
	if err != nil {
		return nil, err
	}
	if len(owned) == 0 {
		return nil, fmt.Errorf("%w: node owns no shards", sim.ErrBadInjection)
	}
	shardPolicy := func() sim.Policy { return policy }
	if len(owned) > 1 {
		cp, ok := policy.(sim.ClonablePolicy)
		if !ok {
			return nil, fmt.Errorf("%w: policy %s does not implement ClonablePolicy (required to host %d shards)",
				sim.ErrBadInjection, policy.Name(), len(owned))
		}
		shardPolicy = func() sim.Policy { return cp.Clone() }
	}
	n := &Node{
		m:      m,
		pt:     pt,
		owned:  slices.Clone(owned),
		shards: make(map[int]*shardState, len(owned)),
	}
	slices.Sort(n.owned)
	for _, idx := range n.owned {
		if idx < 0 || idx >= g.Count() {
			return nil, fmt.Errorf("%w: shard index %d out of range for grid %s", sim.ErrBadInjection, idx, g)
		}
		if _, dup := n.shards[idx]; dup {
			return nil, fmt.Errorf("%w: shard index %d owned twice", sim.ErrBadInjection, idx)
		}
		s, err := newShardState(m, pt, idx%g.P, idx/g.P, shardPolicy(), seed, validation)
		if err != nil {
			return nil, err
		}
		s.finalized = &n.finalized
		n.shards[idx] = s
	}
	return n, nil
}

// Owned returns the hosted shard indices in ascending order. Callers must
// not mutate the slice.
func (n *Node) Owned() []int { return n.owned }

// Grid returns the decomposition the node is part of.
func (n *Node) Grid() Grid { return n.pt.grid }

// shard returns the hosted shard idx or an error naming the protocol bug.
func (n *Node) shard(idx int) (*shardState, error) {
	s := n.shards[idx]
	if s == nil {
		return nil, fmt.Errorf("shard: node does not host shard %d", idx)
	}
	return s, nil
}

// LoadShard replaces shard idx's state with the given live packets, in
// queue order over ascending nodes — the exact order of a checkpoint
// ShardPart re-partitioned to this shard, which is how both initial
// distribution and post-failure rollback arrive. Counter partials are
// cleared; the coordinator owns the global counters.
func (n *Node) LoadShard(idx int, pkts []sim.PacketState) error {
	s, err := n.shard(idx)
	if err != nil {
		return err
	}
	s.clearQueues()
	s.hops, s.deflections, s.arrivals, s.lastArrival = 0, 0, 0, 0
	s.router.Reroutes = 0
	s.router.MaxNodeLoad = 0
	for i := range pkts {
		p := pkts[i].Packet()
		if err := n.m.CheckID(p.Node); err != nil {
			return fmt.Errorf("%w: packet %d: %v", ErrBadCheckpoint, p.ID, err)
		}
		if p.Arrived() {
			return fmt.Errorf("%w: packet %d already arrived", ErrBadCheckpoint, p.ID)
		}
		if n.pt.owner(p.Node) != idx {
			return fmt.Errorf("%w: packet %d at node %d belongs to shard %d, loaded into %d",
				ErrBadCheckpoint, p.ID, p.Node, n.pt.owner(p.Node), idx)
		}
		s.enqueue(p)
	}
	for _, l := range s.active {
		if deg := s.sub.DegreeLocal(int(l)); len(s.byLocal[l]) > deg {
			return fmt.Errorf("%w: node %d holds %d packets, out-degree %d",
				ErrBadCheckpoint, s.sub.GlobalID(int(l)), len(s.byLocal[l]), deg)
		}
	}
	s.sortActive()
	return nil
}

// Route routes every hosted shard for step t and returns the cross-shard
// egress buckets, ordered by (sending shard, bucket index) — a fixed order,
// so the serialized exchange is deterministic. The returned buckets alias
// shard staging memory: they are valid until the next Route.
func (n *Node) Route(t int) ([]Bucket, error) {
	var out []Bucket
	for _, idx := range n.owned {
		s := n.shards[idx]
		if err := s.route(t); err != nil {
			return nil, err
		}
		for b, recv := range s.recvShard {
			if len(s.egress[b]) > 0 {
				out = append(out, Bucket{From: idx, To: recv, Moves: s.egress[b]})
			}
		}
	}
	return out, nil
}

// Apply applies step t on every hosted shard: each shard's internal moves
// merged with the ingress buckets addressed to it. Bucket order does not
// matter (the k-way merge orders by source node); each (From, To) pair may
// appear at most once, exactly as senders produce them. Route(t) must have
// run first.
func (n *Node) Apply(t int, ingress []Bucket) (ApplyReport, error) {
	var rep ApplyReport
	n.finalized = n.finalized[:0]
	for _, idx := range n.owned {
		s := n.shards[idx]
		var lists [maxMergeLists][]sim.Move
		cnt := 0
		if len(s.internal) > 0 {
			lists[cnt] = s.internal
			cnt++
		}
		for i := range ingress {
			in := &ingress[i]
			if in.To != idx || len(in.Moves) == 0 {
				continue
			}
			if cnt >= len(lists) {
				return rep, fmt.Errorf("shard: step %d shard %d: more than %d ingress lists (duplicate sender bucket?)",
					t, idx, len(lists)-1)
			}
			lists[cnt] = in.Moves
			cnt++
		}
		s.clearQueues()
		s.merge(t, lists[:cnt])
		s.sortActive()

		rep.Hops += s.hops
		rep.Deflections += s.deflections
		rep.Arrivals += s.arrivals
		if s.lastArrival > rep.LastArrival {
			rep.LastArrival = s.lastArrival
		}
		s.hops, s.deflections, s.arrivals, s.lastArrival = 0, 0, 0, 0
		rep.Reroutes += s.router.Reroutes
		s.router.Reroutes = 0
		if s.router.MaxNodeLoad > rep.MaxNodeLoad {
			rep.MaxNodeLoad = s.router.MaxNodeLoad
		}
		s.router.MaxNodeLoad = 0
	}
	for _, p := range n.finalized {
		rep.Finalized = append(rep.Finalized, sim.CapturePacket(p))
	}
	return rep, nil
}

// HashWords appends shard idx's configuration-hash word pairs — one
// (idWord, posWord) pair per live packet, in queue order over the shard's
// sorted active nodes — to dst and returns it. A coordinator re-folds the
// pairs of all shards in global row order into the exact single-engine
// state hash (the posWord's high bits carry the node id it needs to do so).
func (n *Node) HashWords(idx int, dst []uint64) ([]uint64, error) {
	s, err := n.shard(idx)
	if err != nil {
		return nil, err
	}
	for _, l := range s.active {
		for _, p := range s.byLocal[l] {
			id, pos := sim.ConfigHashPacketWords(p)
			dst = append(dst, id, pos)
		}
	}
	return dst, nil
}

// Part captures shard idx's live packets as a checkpoint part for step t,
// in the same queue order Engine.Checkpoint writes.
func (n *Node) Part(idx, t int) (ShardPart, error) {
	s, err := n.shard(idx)
	if err != nil {
		return ShardPart{}, err
	}
	part := ShardPart{Version: CheckpointVersion, Index: idx, Time: t}
	for _, l := range s.active {
		for _, p := range s.byLocal[l] {
			part.Packets = append(part.Packets, sim.CapturePacket(p))
		}
	}
	return part, nil
}

// Live returns the number of live packets across the hosted shards.
func (n *Node) Live() int {
	total := 0
	for _, idx := range n.owned {
		s := n.shards[idx]
		for _, l := range s.active {
			total += len(s.byLocal[l])
		}
	}
	return total
}
