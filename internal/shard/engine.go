package shard

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"slices"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hotpotato/internal/mesh"
	"hotpotato/internal/rng"
	"hotpotato/internal/sim"
)

// ErrShardPanic wraps a panic that escaped one shard's stepping goroutine.
// The other shards finish their phase normally; with Options.MaxRecoveries
// the run rolls every shard back to the last coordinated checkpoint and
// retries, otherwise the error surfaces from Step/Run.
var ErrShardPanic = errors.New("shard: shard worker panicked")

// defaultRecoveryCadence is how often RunCheckpointed captures an in-memory
// rollback checkpoint when recovery is enabled but no periodic save cadence
// was requested.
const defaultRecoveryCadence = 256

// Options configures a sharded Engine. The simulation semantics (seed,
// validation, livelock detection, step budget) are those of sim.Options;
// Grid adds the decomposition and MaxRecoveries the crash policy.
type Options struct {
	// Grid is the P x Q shard decomposition; the zero value means 1x1.
	Grid Grid
	// MaxSteps bounds the simulation length; 0 means sim.DefaultMaxSteps.
	MaxSteps int
	// Seed seeds tie-break randomness. Derivation is per (seed, step,
	// global node) — sim.NodeSeed — so results are identical across shard
	// geometries and match a sim engine with Workers > 1.
	Seed int64
	// Validation selects per-step checking of policy output.
	Validation sim.ValidationLevel
	// DetectLivelock enables configuration hashing (deterministic policies
	// only), bit-compatible with the single engine's detector.
	DetectLivelock bool
	// MaxRecoveries is how many times a panicked shard may be recovered by
	// rolling all shards back to the last coordinated checkpoint. 0 means a
	// panic surfaces as an error immediately.
	MaxRecoveries int
	// MaxWallTime bounds the wall-clock duration of Run; 0 means no limit.
	MaxWallTime time.Duration
}

// phase identifiers broadcast to the shard workers at each barrier.
const (
	phaseRoute = iota
	phaseApply
)

type phaseCmd struct {
	phase int
	t     int
}

// shardState is one shard: a Subgrid view, a NodeRouter against it, the
// per-node queues of the owned rectangle, and the halo mailboxes. It is
// owned by one worker goroutine during phases and by the coordinator
// between barriers; it deliberately holds no reference to the Engine so an
// abandoned engine can be collected and its finalizer can stop the workers.
type shardState struct {
	idx    int
	sub    *mesh.Subgrid
	router *sim.NodeRouter
	pt     *partition

	// byLocal[local] is the queue of the owned node, sliced to out-degree
	// capacity off one contiguous backing array (allocation-free enqueue).
	byLocal    [][]*sim.Packet
	active     []int32 // local ids of non-empty queues, sorted between steps
	activeMark []bool

	// Halo mailboxes. internal stages this shard's own moves; egress[b]
	// stages moves leaving toward receiver shard recvShard[b]. recvOf maps
	// a travel direction to its egress bucket (-1: off-mesh or wraps back
	// into this shard). Buckets are keyed by receiver — two directions that
	// reach the same shard (a 2-wide torus ring) share one bucket, so a
	// node emitting through both still delivers its moves in queue order.
	internal  []sim.Move
	egress    [][]sim.Move
	recvShard []int
	recvOf    []int
	// ingress points at the egress buckets of the neighbors that send to
	// this shard — read only after the route barrier, which provides the
	// happens-before edge.
	ingress []*[]sim.Move

	// Per-step partials, drained by the coordinator at the apply barrier.
	hops        int64
	deflections int64
	arrivals    int
	lastArrival int
	err         error

	// finalized, when non-nil, collects packets that arrive during merge —
	// set by the distributed Node, which has no Engine packet list to
	// consult afterwards. The in-process Engine leaves it nil.
	finalized *[]*sim.Packet

	cmds chan phaseCmd
	wg   *sync.WaitGroup
}

// Engine steps one routing problem across P*Q shard goroutines with
// lock-step barriers: every shard routes its nodes, then every shard
// applies the moves destined to it (its own plus its neighbors' halo
// transfers), in an order chosen so the resulting configurations are
// bit-identical to a single engine's. See the package comment for the
// determinism argument.
//
// The Engine itself is not safe for concurrent use: one goroutine drives
// Step/Run and may inspect state between steps.
type Engine struct {
	mesh   *mesh.Mesh
	policy sim.Policy
	pt     *partition
	shards []*shardState
	opts   Options

	packets     []*sim.Packet
	time        int
	live        int
	lastArrival int
	nextID      int

	livelock     bool
	livelockable bool
	seen         map[uint64]int

	// Continuous traffic. injSrc is seeded rng.Mix(opts.Seed) — exactly the
	// single engine's serial stream. On a Workers>1 sim engine that stream is
	// consumed only by injection (tie-breaks come from per-(seed, step, node)
	// streams, as they do here), so a deterministic injector draws identical
	// values on both engines and the parity contract extends to dynamic
	// traffic.
	injector sim.Injector
	injSrc   rng.SplitMix64
	injRng   *rand.Rand

	totalDeflections int64
	totalHops        int64
	maxNodeLoad      int
	reroutes         int64
	deadlineExceeded bool
	recoveries       int

	// StepHook, when set before running, is called after every completed
	// step with the new time and live count (progress reporting).
	StepHook func(t, live int)

	wg        *sync.WaitGroup
	closeOnce sync.Once
}

// New validates the initial configuration and returns a sharded engine
// positioned at time 0. The rules are sim.New's: packets sit at their
// sources with unique IDs, no node originates more packets than its
// out-degree, and source==destination packets are absorbed immediately.
// The mesh must be 2-dimensional. With more than one shard the policy must
// implement sim.ClonablePolicy (each shard routes with its own clone).
func New(m *mesh.Mesh, policy sim.Policy, packets []*sim.Packet, opts Options) (*Engine, error) {
	if m == nil {
		return nil, fmt.Errorf("%w: nil mesh", sim.ErrBadInjection)
	}
	if policy == nil {
		return nil, fmt.Errorf("%w: nil policy", sim.ErrBadInjection)
	}
	opts.Grid = opts.Grid.norm()
	if opts.MaxSteps <= 0 {
		opts.MaxSteps = sim.DefaultMaxSteps
	}
	pt, err := newPartition(m, opts.Grid)
	if err != nil {
		return nil, err
	}
	n := opts.Grid.Count()
	e := &Engine{
		mesh:         m,
		policy:       policy,
		pt:           pt,
		opts:         opts,
		packets:      packets,
		livelockable: opts.DetectLivelock && policy.Deterministic(),
		wg:           new(sync.WaitGroup),
	}
	if e.livelockable {
		e.seen = make(map[uint64]int)
	}
	e.injSrc.Seed(rng.Mix(opts.Seed))
	e.injRng = rand.New(&e.injSrc)

	shardPolicy := func() sim.Policy { return policy }
	if n > 1 {
		cp, ok := policy.(sim.ClonablePolicy)
		if !ok {
			return nil, fmt.Errorf("%w: policy %s does not implement ClonablePolicy (required by grid %s)",
				sim.ErrBadInjection, policy.Name(), opts.Grid)
		}
		shardPolicy = func() sim.Policy { return cp.Clone() }
	}

	e.shards = make([]*shardState, n)
	for row := 0; row < opts.Grid.Q; row++ {
		for col := 0; col < opts.Grid.P; col++ {
			s, err := newShardState(m, pt, col, row, shardPolicy(), opts.Seed, opts.Validation)
			if err != nil {
				return nil, err
			}
			s.cmds = make(chan phaseCmd, 1)
			s.wg = e.wg
			e.shards[s.idx] = s
		}
	}
	// Wire ingress: every egress bucket of every sender feeds exactly one
	// receiver's ingress list.
	for _, s := range e.shards {
		for b, recv := range s.recvShard {
			r := e.shards[recv]
			r.ingress = append(r.ingress, &s.egress[b])
		}
	}

	// Admit the initial configuration.
	ids := make(map[int]struct{}, len(packets))
	for _, p := range packets {
		if p == nil {
			return nil, fmt.Errorf("%w: nil packet", sim.ErrBadInjection)
		}
		if err := m.CheckID(p.Src); err != nil {
			return nil, fmt.Errorf("%w: packet %d source: %v", sim.ErrBadInjection, p.ID, err)
		}
		if err := m.CheckID(p.Dst); err != nil {
			return nil, fmt.Errorf("%w: packet %d destination: %v", sim.ErrBadInjection, p.ID, err)
		}
		if p.Node != p.Src {
			return nil, fmt.Errorf("%w: packet %d not at its source", sim.ErrBadInjection, p.ID)
		}
		if _, dup := ids[p.ID]; dup {
			return nil, fmt.Errorf("%w: duplicate packet id %d", sim.ErrBadInjection, p.ID)
		}
		ids[p.ID] = struct{}{}
		if p.ID >= e.nextID {
			e.nextID = p.ID + 1
		}
		p.Cause = sim.DropNone
		p.DroppedAt = -1
		if p.Src == p.Dst {
			p.ArrivedAt = 0
			continue
		}
		p.ArrivedAt = -1
		e.shards[pt.owner(p.Src)].enqueue(p)
		e.live++
	}
	for _, s := range e.shards {
		for _, l := range s.active {
			if deg := s.sub.DegreeLocal(int(l)); len(s.byLocal[l]) > deg {
				return nil, fmt.Errorf("%w: node %d originates %d packets, out-degree %d",
					sim.ErrBadInjection, s.sub.GlobalID(int(l)), len(s.byLocal[l]), deg)
			}
		}
		s.sortActive()
	}

	for _, s := range e.shards {
		go s.work()
	}
	// Stop the shard goroutines when the engine is collected, so callers
	// that never Close do not leak them (the workers reference only their
	// shardState, never the Engine, so collection is not prevented).
	runtime.SetFinalizer(e, (*Engine).Close)
	return e, nil
}

// newShardState builds one shard: the Subgrid view, its NodeRouter, the
// allocation-free queue backing, and the egress buckets. Shared by the
// in-process Engine (which adds the phase channel and a worker goroutine)
// and the distributed Node (which steps its shards sequentially and leaves
// cmds/wg nil).
func newShardState(m *mesh.Mesh, pt *partition, col, row int, policy sim.Policy, seed int64, validation sim.ValidationLevel) (*shardState, error) {
	x0, y0, w, h := pt.bounds(col, row)
	sub, err := m.Subgrid(x0, y0, w, h)
	if err != nil {
		return nil, err
	}
	s := &shardState{
		idx:        row*pt.grid.P + col,
		sub:        sub,
		router:     sim.NewNodeRouter(sub, policy, seed, validation),
		pt:         pt,
		byLocal:    make([][]*sim.Packet, sub.Len()),
		activeMark: make([]bool, sub.Len()),
		recvOf:     make([]int, m.DirCount()),
	}
	arcs := 0
	for l := 0; l < sub.Len(); l++ {
		arcs += sub.DegreeLocal(l)
	}
	backing := make([]*sim.Packet, arcs)
	off := 0
	for l := 0; l < sub.Len(); l++ {
		deg := sub.DegreeLocal(l)
		s.byLocal[l] = backing[off : off : off+deg]
		off += deg
	}
	wireEgress(s, pt.grid, m.Wrap(), col, row)
	return s, nil
}

// wireEgress computes, for shard (col, row), the receiver shard of each
// travel direction and allocates one egress bucket per distinct receiver.
func wireEgress(s *shardState, g Grid, wrap bool, col, row int) {
	for d := range s.recvOf {
		s.recvOf[d] = -1
		ncol, nrow := col, row
		switch mesh.Dir(d) {
		case mesh.DirPlus(0):
			ncol++
		case mesh.DirMinus(0):
			ncol--
		case mesh.DirPlus(1):
			nrow++
		case mesh.DirMinus(1):
			nrow--
		}
		if ncol < 0 || ncol >= g.P || nrow < 0 || nrow >= g.Q {
			if !wrap {
				continue // the arc leads off the mesh; nothing ever leaves this way
			}
			ncol = (ncol + g.P) % g.P
			nrow = (nrow + g.Q) % g.Q
		}
		recv := nrow*g.P + ncol
		if recv == s.idx {
			continue // wraps back into this shard: such moves are internal
		}
		b := -1
		for i, r := range s.recvShard {
			if r == recv {
				b = i
				break
			}
		}
		if b < 0 {
			b = len(s.recvShard)
			s.recvShard = append(s.recvShard, recv)
			s.egress = append(s.egress, nil)
		}
		s.recvOf[d] = b
	}
}

// Close stops the shard worker goroutines. Safe to call more than once; the
// engine must not be stepped after Close. Called automatically by a
// finalizer when the engine is collected.
func (e *Engine) Close() {
	e.closeOnce.Do(func() {
		for _, s := range e.shards {
			close(s.cmds)
		}
	})
}

// Accessors, mirroring sim.Engine's.

// Mesh returns the base mesh.
func (e *Engine) Mesh() *mesh.Mesh { return e.mesh }

// Policy returns the routing policy New was given (shards route with their
// own clones of it).
func (e *Engine) Policy() sim.Policy { return e.policy }

// Grid returns the shard decomposition.
func (e *Engine) Grid() Grid { return e.opts.Grid }

// Packets returns all packets of the problem. Callers must not mutate them.
func (e *Engine) Packets() []*sim.Packet { return e.packets }

// Time returns the current step index.
func (e *Engine) Time() int { return e.time }

// Live returns the number of packets still in the network.
func (e *Engine) Live() int { return e.live }

// Done reports whether every packet has arrived.
func (e *Engine) Done() bool { return e.live == 0 }

// Livelocked reports whether a repeated configuration was detected.
func (e *Engine) Livelocked() bool { return e.livelock }

// Recoveries returns how many checkpoint rollbacks Run performed after
// shard panics.
func (e *Engine) Recoveries() int { return e.recoveries }

// SetInjector installs a continuous traffic source, with the same contract
// as sim.Engine.SetInjector: injection happens at the beginning of every
// step before routing, and livelock detection is disabled (the
// configuration is no longer closed). Because the injection RNG is seeded
// exactly like the single engine's serial stream, a run with the same seed,
// injector and deterministic policy is bit-identical to a Workers>1 single
// engine's.
func (e *Engine) SetInjector(inj sim.Injector) {
	e.injector = inj
	e.livelockable = false
}

// InjectionCapacity implements sim.InjectorHost: how many packets can still
// be injected at the node this step without exceeding its out-degree.
func (e *Engine) InjectionCapacity(node mesh.NodeID) int {
	s := e.shards[e.pt.owner(node)]
	l := s.sub.LocalID(node)
	c := s.sub.DegreeLocal(l) - len(s.byLocal[l])
	if c < 0 {
		return 0
	}
	return c
}

// NextPacketID implements sim.InjectorHost: a fresh packet ID, unique
// within this engine.
func (e *Engine) NextPacketID() int {
	id := e.nextID
	e.nextID++
	return id
}

var _ sim.InjectorHost = (*Engine)(nil)

// inject runs the installed injector and validates its output with the
// single engine's rules (sharded runs carry no fault model, so the graceful
// DropInject path does not apply — any capacity violation is an injector
// bug and a hard error). Runs coordinator-side between step barriers, so it
// may touch shard queues freely.
func (e *Engine) inject() error {
	floor := e.nextID
	newPackets := e.injector.Inject(e.time, e, e.injRng)
	touched := false
	for _, p := range newPackets {
		if p == nil {
			return fmt.Errorf("%w: injector returned nil packet at step %d", sim.ErrBadInjection, e.time)
		}
		if err := e.mesh.CheckID(p.Src); err != nil {
			return fmt.Errorf("%w: injected packet %d source: %v", sim.ErrBadInjection, p.ID, err)
		}
		if err := e.mesh.CheckID(p.Dst); err != nil {
			return fmt.Errorf("%w: injected packet %d destination: %v", sim.ErrBadInjection, p.ID, err)
		}
		if p.Node != p.Src {
			return fmt.Errorf("%w: injected packet %d not at its source", sim.ErrBadInjection, p.ID)
		}
		if p.ID < floor {
			return fmt.Errorf("%w: injected packet reuses id %d (or breaks the increasing-id contract, watermark %d) at step %d",
				sim.ErrBadInjection, p.ID, floor, e.time)
		}
		floor = p.ID + 1
		if p.ID >= e.nextID {
			e.nextID = p.ID + 1
		}
		e.packets = append(e.packets, p)
		p.InjectedAt = e.time
		p.Cause = sim.DropNone
		p.DroppedAt = -1
		if p.Src == p.Dst {
			p.ArrivedAt = e.time
			continue
		}
		p.ArrivedAt = -1
		s := e.shards[e.pt.owner(p.Src)]
		l := s.sub.LocalID(p.Src)
		if len(s.byLocal[l]) >= s.sub.DegreeLocal(l) {
			return fmt.Errorf("%w: step %d node %d injection exceeds out-degree %d",
				sim.ErrBadInjection, e.time, p.Src, s.sub.DegreeLocal(l))
		}
		s.enqueue(p)
		e.live++
		touched = true
	}
	if touched {
		for _, s := range e.shards {
			s.sortActive()
		}
	}
	return nil
}

// Progress returns the engine's current progress counters, shaped exactly
// like sim.Engine.Progress so frontends can report either engine through
// one code path. Sharded runs never drop or absorb packets (no fault
// injection), so those counters are always zero.
func (e *Engine) Progress() sim.Progress {
	return sim.Progress{
		Time:             e.time,
		Live:             e.live,
		Delivered:        len(e.packets) - e.live,
		Total:            len(e.packets),
		TotalHops:        e.totalHops,
		TotalDeflections: e.totalDeflections,
		MaxNodeLoad:      e.maxNodeLoad,
	}
}

// work is the shard worker loop: one phase per barrier, panic-isolated.
func (s *shardState) work() {
	for cmd := range s.cmds {
		s.runPhase(cmd)
		s.wg.Done()
	}
}

func (s *shardState) runPhase(cmd phaseCmd) {
	defer func() {
		if r := recover(); r != nil {
			s.err = fmt.Errorf("%w: shard %d, step %d: %v", ErrShardPanic, s.idx, cmd.t, r)
		}
	}()
	switch cmd.phase {
	case phaseRoute:
		s.err = s.route(cmd.t)
	case phaseApply:
		s.apply(cmd.t)
	}
}

// phase broadcasts one phase to every shard and waits for the barrier. The
// WaitGroup gives the coordinator (and, transitively, the next phase's
// workers) a happens-before edge over everything the shards wrote.
func (e *Engine) phase(ph, t int) error {
	e.wg.Add(len(e.shards))
	for _, s := range e.shards {
		s.err = nil
		s.cmds <- phaseCmd{phase: ph, t: t}
	}
	e.wg.Wait()
	for _, s := range e.shards {
		if s.err != nil {
			return s.err
		}
	}
	return nil
}

// route routes every active node of the shard in ascending global-node
// order, staging each move in the internal list or the egress bucket of the
// receiving shard. Within every staging list, moves are appended in
// (source node, queue position) order — the single engine's application
// order restricted to that list — which is what the receivers' merge relies
// on.
func (s *shardState) route(t int) error {
	s.internal = s.internal[:0]
	for b := range s.egress {
		s.egress[b] = s.egress[b][:0]
	}
	var buf [2 * mesh.MaxDim]sim.Move
	for _, l := range s.active {
		pkts := s.byLocal[l]
		node := s.sub.GlobalID(int(l))
		dst := buf[:len(pkts)]
		if err := s.router.RouteNode(node, t, pkts, dst); err != nil {
			return err
		}
		for i := range dst {
			if s.sub.Owns(dst[i].To) {
				s.internal = append(s.internal, dst[i])
				continue
			}
			b := s.recvOf[dst[i].Dir]
			if b < 0 {
				return fmt.Errorf("shard: internal error: shard %d step %d move %d->%d via %v has no receiver",
					s.idx, t, dst[i].From, dst[i].To, dst[i].Dir)
			}
			s.egress[b] = append(s.egress[b], dst[i])
		}
	}
	return nil
}

// apply empties the shard's queues and applies the moves destined to it —
// its internal list merged with the ingress buckets — in ascending global
// source-node order. Each staging list is sorted by source node (route's
// invariant) and the lists' source sets are disjoint (every node has one
// owner), so a k-way min-merge on Move.From reproduces exactly the single
// engine's per-destination enqueue order; queue order is routing-relevant
// state, so this is where sharded equals unsharded.
func (s *shardState) apply(t int) {
	s.clearQueues()
	var lists [maxMergeLists][]sim.Move
	n := 0
	if len(s.internal) > 0 {
		lists[n] = s.internal
		n++
	}
	for _, in := range s.ingress {
		if len(*in) > 0 {
			lists[n] = *in
			n++
		}
	}
	s.merge(t, lists[:n])
	s.sortActive()
}

// maxMergeLists bounds how many staging lists one shard's apply can merge:
// its internal list plus one per distinct sending neighbor shard. Buckets
// are receiver-keyed on the sender, so each of the at most four neighbor
// shards (fewer when torus wrap aliases them) contributes one list.
const maxMergeLists = 5

// clearQueues empties every queue and the active set — the first half of
// apply, also used when (re)loading shard state from a checkpoint part.
func (s *shardState) clearQueues() {
	for _, l := range s.active {
		s.byLocal[l] = s.byLocal[l][:0]
		s.activeMark[l] = false
	}
	s.active = s.active[:0]
}

// merge applies the staging lists by k-way min-merge on Move.From. Each list
// is sorted by source node (route's invariant) and the lists' source sets
// are disjoint (every node has one owner), so the merge reproduces exactly
// the single engine's per-destination enqueue order. When s.finalized is
// non-nil (the distributed Node), arrived packets are additionally collected
// there, since no surrounding Engine tracks them.
func (s *shardState) merge(t int, lists [][]sim.Move) {
	n := len(lists)
	for n > 0 {
		best := 0
		for i := 1; i < n; i++ {
			if lists[i][0].From < lists[best][0].From {
				best = i
			}
		}
		mv := &lists[best][0]
		p := mv.Packet
		p.GoodPrev = mv.GoodCount
		p.RestrictedPrev = mv.WasRestricted
		p.AdvancedPrev = mv.Advanced
		p.Node = mv.To
		p.EnteredVia = mv.Dir
		p.Hops++
		s.hops++
		if !mv.Advanced {
			p.Deflections++
			s.deflections++
		}
		if mv.ArrivedNow {
			p.ArrivedAt = t + 1
			s.arrivals++
			s.lastArrival = t + 1
			if s.finalized != nil {
				*s.finalized = append(*s.finalized, p)
			}
		} else {
			s.enqueue(p)
		}
		if lists[best] = lists[best][1:]; len(lists[best]) == 0 {
			lists[best] = lists[n-1]
			n--
		}
	}
}

func (s *shardState) enqueue(p *sim.Packet) {
	l := int32(s.sub.LocalID(p.Node))
	if len(s.byLocal[l]) == 0 && !s.activeMark[l] {
		s.activeMark[l] = true
		s.active = append(s.active, l)
	}
	s.byLocal[l] = append(s.byLocal[l], p)
}

// sortActive restores local-id order (which is global-id order within the
// shard) after apply perturbed it: dense sets rebuild from the mark bitmap,
// sparse sets fall back to slices.Sort — sim.Engine's scheme.
func (s *shardState) sortActive() {
	a := s.active
	if len(a) <= 1 {
		return
	}
	if len(a)*4 >= len(s.activeMark) {
		a = a[:0]
		for l, mark := range s.activeMark {
			if mark {
				a = append(a, int32(l))
			}
		}
		s.active = a
		return
	}
	slices.Sort(a)
}

// Step advances the simulation by one synchronous step: a route barrier, an
// apply barrier (the halo exchange happens between the two — receivers read
// their neighbors' egress buckets), then coordinator bookkeeping.
func (e *Engine) Step() error {
	t := e.time
	if e.injector != nil {
		if err := e.inject(); err != nil {
			return err
		}
	}
	if err := e.phase(phaseRoute, t); err != nil {
		return err
	}
	if err := e.phase(phaseApply, t); err != nil {
		return err
	}
	e.time = t + 1
	for _, s := range e.shards {
		e.totalHops += s.hops
		s.hops = 0
		e.totalDeflections += s.deflections
		s.deflections = 0
		e.live -= s.arrivals
		s.arrivals = 0
		if s.lastArrival > e.lastArrival {
			e.lastArrival = s.lastArrival
		}
		e.reroutes += s.router.Reroutes
		s.router.Reroutes = 0
		if s.router.MaxNodeLoad > e.maxNodeLoad {
			e.maxNodeLoad = s.router.MaxNodeLoad
		}
		s.router.MaxNodeLoad = 0
	}
	if e.StepHook != nil {
		e.StepHook(e.time, e.live)
	}
	if e.livelockable && e.live > 0 {
		h := e.stateHash()
		if _, dup := e.seen[h]; dup {
			e.livelock = true
		} else {
			e.seen[h] = e.time
		}
	}
	return nil
}

// stateHash folds every live packet in queue order over the globally-sorted
// active nodes — rows in ascending y, shard columns left to right within a
// row, owned nodes in ascending x — reproducing sim.Engine's stateHash fold
// exactly. Within a shard, the active nodes of one global row form a
// contiguous local-id range, found by binary search in the sorted active
// list.
func (e *Engine) stateHash() uint64 {
	h := sim.ConfigHashSeed
	g := e.pt.grid
	for r := 0; r < g.Q; r++ {
		band := e.shards[r*g.P : (r+1)*g.P]
		_, y0, _, bh := band[0].sub.Bounds()
		for y := y0; y < y0+bh; y++ {
			for _, s := range band {
				_, sy0, w, _ := s.sub.Bounds()
				lo := int32((y - sy0) * w)
				hi := lo + int32(w)
				a := s.active
				i := sort.Search(len(a), func(i int) bool { return a[i] >= lo })
				for ; i < len(a) && a[i] < hi; i++ {
					for _, p := range s.byLocal[a[i]] {
						h = sim.ConfigHashPacket(h, p)
					}
				}
			}
		}
	}
	return h
}

// StateHash returns the engine's configuration hash, bit-identical to the
// equivalent sim.Engine.StateHash in the same configuration — the package's
// parity contract. Valid between steps.
func (e *Engine) StateHash() uint64 { return e.stateHash() }

// runnable reports whether the run has work left: packets in flight or an
// injector still producing, no livelock, and step budget remaining.
func (e *Engine) runnable() bool {
	return (e.live > 0 || (e.injector != nil && !e.injector.Exhausted(e.time))) &&
		!e.livelock && e.time < e.opts.MaxSteps
}

// Run steps the engine until every packet arrives, a livelock is detected,
// or the step budget is exhausted, and returns the summary. The Result type
// is sim's: a sharded run summarizes identically to a single-shard one.
func (e *Engine) Run() (*sim.Result, error) { return e.RunContext(context.Background()) }

// RunContext is Run with cancellation and deadline control, with the same
// contract as sim.Engine.RunContext: a deadline (ctx or MaxWallTime) ends
// the run after the step in flight with DeadlineExceeded set and a nil
// error; cancellation returns the partial summary alongside ctx.Err().
func (e *Engine) RunContext(ctx context.Context) (*sim.Result, error) {
	return e.RunCheckpointed(ctx, 0, nil)
}

// RunCheckpointed is RunContext with periodic coordinated checkpoints: when
// every > 0 and save is non-nil, save receives a fresh Checkpoint after
// each `every` completed steps and once more if the run stops early with
// unsaved progress. Checkpoints are captured at step barriers, so they are
// globally consistent; Options.MaxRecoveries additionally uses the most
// recent one (kept in memory, captured on a default cadence if no save
// cadence was given) to roll every shard back and retry when a shard
// panics mid-run.
func (e *Engine) RunCheckpointed(ctx context.Context, every int, save func(*Checkpoint) error) (*sim.Result, error) {
	var stop atomic.Bool
	if e.opts.MaxWallTime > 0 {
		timer := time.AfterFunc(e.opts.MaxWallTime, func() { stop.Store(true) })
		defer timer.Stop()
	}
	if done := ctx.Done(); done != nil {
		quit := make(chan struct{})
		defer close(quit)
		go func() {
			select {
			case <-done:
				stop.Store(true)
			case <-quit:
			}
		}()
	}

	recoverable := e.opts.MaxRecoveries > 0
	cadence := every
	if cadence <= 0 && recoverable {
		cadence = defaultRecoveryCadence
	}
	var lastCK *Checkpoint
	if recoverable {
		ck, err := e.Checkpoint()
		if err != nil {
			return nil, err
		}
		lastCK = ck
	}
	// sinceCapture paces in-memory rollback captures; sinceDisk tracks steps
	// not yet committed by save, so the early-stop flush below never writes
	// a checkpoint identical to the last periodic one and never skips one.
	sinceCapture, sinceDisk := 0, 0
	for e.runnable() && !stop.Load() {
		if err := e.Step(); err != nil {
			if recoverable && e.recoveries < e.opts.MaxRecoveries && recoverableErr(err) && lastCK != nil {
				e.recoveries++
				if rerr := e.loadCheckpoint(lastCK); rerr != nil {
					return nil, errors.Join(err, fmt.Errorf("shard: rollback failed: %w", rerr))
				}
				// sinceDisk is left alone: the disk state did not move, and
				// replayed steps re-increment it (overcounting at worst
				// causes one redundant flush, never a missed one).
				sinceCapture = 0
				continue
			}
			return nil, err
		}
		sinceCapture++
		sinceDisk++
		if cadence > 0 && sinceCapture >= cadence {
			ck, err := e.Checkpoint()
			if err != nil {
				return nil, err
			}
			if recoverable {
				lastCK = ck
			}
			if save != nil && every > 0 {
				if err := save(ck); err != nil {
					return nil, fmt.Errorf("shard: checkpoint save: %w", err)
				}
				sinceDisk = 0
			}
			sinceCapture = 0
		}
	}

	var runErr error
	if e.runnable() { // stopped early: resolve the cause
		if err := ctx.Err(); errors.Is(err, context.Canceled) {
			runErr = err
		} else {
			e.deadlineExceeded = true
		}
		if save != nil && sinceDisk > 0 {
			ck, err := e.Checkpoint()
			if err != nil {
				return nil, err
			}
			if err := save(ck); err != nil {
				return nil, fmt.Errorf("shard: checkpoint save: %w", err)
			}
		}
	}
	return e.result(), runErr
}

// recoverableErr reports whether a step error is a crash-class failure —
// a panic that escaped a shard worker or one the router caught inside a
// policy — as opposed to a validation error, which is deterministic and
// would only repeat on replay.
func recoverableErr(err error) bool {
	return errors.Is(err, ErrShardPanic) || errors.Is(err, sim.ErrPolicyPanic)
}

func (e *Engine) result() *sim.Result {
	return &sim.Result{
		Steps:            e.lastArrival,
		Delivered:        len(e.packets) - e.live,
		Total:            len(e.packets),
		Livelocked:       e.livelock,
		HitMaxSteps:      e.live > 0 && !e.livelock && !e.deadlineExceeded && e.time >= e.opts.MaxSteps,
		TotalDeflections: e.totalDeflections,
		TotalHops:        e.totalHops,
		MaxNodeLoad:      e.maxNodeLoad,
		Reroutes:         e.reroutes,
		DeadlineExceeded: e.deadlineExceeded,
	}
}
