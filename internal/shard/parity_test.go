package shard_test

import (
	"fmt"
	"math/rand"
	"testing"

	"hotpotato/internal/mesh"
	"hotpotato/internal/routing"
	"hotpotato/internal/shard"
	"hotpotato/internal/sim"
	"hotpotato/internal/workload"
)

// clonePackets deep-copies a packet set so two engines can mutate their own
// copies of the same initial configuration.
func clonePackets(pkts []*sim.Packet) []*sim.Packet {
	out := make([]*sim.Packet, len(pkts))
	for i, p := range pkts {
		ps := sim.CapturePacket(p)
		out[i] = ps.Packet()
	}
	return out
}

// lockstep drives a sim.Engine (the reference, with Workers > 1 so
// randomized policies draw from the same per-node streams the shards use)
// and a sharded engine over the same problem one step at a time, requiring
// a bit-identical configuration hash after every step — the package's
// headline parity contract, checked far more stringently than comparing
// final results would.
func lockstep(t *testing.T, m *mesh.Mesh, mk func() sim.Policy, pkts []*sim.Packet, seed int64, g shard.Grid, maxSteps int) {
	t.Helper()
	ref, err := sim.New(m, mk(), clonePackets(pkts), sim.Options{
		Seed: seed, MaxSteps: maxSteps, DetectLivelock: true, Workers: 2,
	})
	if err != nil {
		t.Fatalf("sim.New: %v", err)
	}
	defer ref.Close()
	sh, err := shard.New(m, mk(), clonePackets(pkts), shard.Options{
		Grid: g, Seed: seed, MaxSteps: maxSteps, DetectLivelock: true,
	})
	if err != nil {
		t.Fatalf("shard.New: %v", err)
	}
	defer sh.Close()

	if hr, hs := ref.StateHash(), sh.StateHash(); hr != hs {
		t.Fatalf("initial state hash: sim %#x, shard %#x", hr, hs)
	}
	for {
		refRun := ref.Live() > 0 && !ref.Livelocked() && ref.Time() < maxSteps
		shRun := sh.Live() > 0 && !sh.Livelocked() && sh.Time() < maxSteps
		if refRun != shRun {
			t.Fatalf("step %d: sim runnable=%v (live %d, livelock %v), shard runnable=%v (live %d, livelock %v)",
				ref.Time(), refRun, ref.Live(), ref.Livelocked(), shRun, sh.Live(), sh.Livelocked())
		}
		if !refRun {
			break
		}
		if err := ref.Step(); err != nil {
			t.Fatalf("sim step %d: %v", ref.Time(), err)
		}
		if err := sh.Step(); err != nil {
			t.Fatalf("shard step %d: %v", sh.Time(), err)
		}
		if ref.Live() != sh.Live() {
			t.Fatalf("step %d: live count diverged: sim %d, shard %d", ref.Time(), ref.Live(), sh.Live())
		}
		if hr, hs := ref.StateHash(), sh.StateHash(); hr != hs {
			t.Fatalf("step %d: state hash diverged: sim %#x, shard %#x", ref.Time(), hr, hs)
		}
	}

	// Both engines are out of work; their summaries must agree field by field.
	rr, err := ref.Run()
	if err != nil {
		t.Fatalf("sim result: %v", err)
	}
	sr, err := sh.Run()
	if err != nil {
		t.Fatalf("shard result: %v", err)
	}
	if rr.Steps != sr.Steps || rr.Delivered != sr.Delivered || rr.Total != sr.Total ||
		rr.Livelocked != sr.Livelocked || rr.HitMaxSteps != sr.HitMaxSteps ||
		rr.TotalDeflections != sr.TotalDeflections || rr.TotalHops != sr.TotalHops ||
		rr.MaxNodeLoad != sr.MaxNodeLoad || rr.Reroutes != sr.Reroutes {
		t.Fatalf("results diverged:\n  sim   %+v\n  shard %+v", rr, sr)
	}
}

// TestShardParity is the headline contract test: for every combination of
// base topology (mesh, torus, odd-side torus), workload, seed, shard grid
// (including uneven decompositions) and policy class (deterministic and
// randomized), the sharded engine's per-step configuration hashes are
// bit-identical to the single engine's.
func TestShardParity(t *testing.T) {
	bases := []struct {
		name string
		m    *mesh.Mesh
	}{
		{"mesh8", mesh.MustNew(2, 8)},
		{"torus8", mesh.MustNewTorus(2, 8)},
		{"torus9", mesh.MustNewTorus(2, 9)},
	}
	workloads := []struct {
		name string
		gen  func(m *mesh.Mesh, r *rand.Rand) []*sim.Packet
	}{
		{"fullload", func(m *mesh.Mesh, r *rand.Rand) []*sim.Packet {
			pkts, err := workload.FullLoad(m, 2, r)
			if err != nil {
				t.Fatalf("FullLoad: %v", err)
			}
			return pkts
		}},
		{"permutation", func(m *mesh.Mesh, r *rand.Rand) []*sim.Packet {
			return workload.Permutation(m, r)
		}},
	}
	policies := []struct {
		name string
		mk   func() sim.Policy
	}{
		{"greedy-fixed", routing.NewFixedPriority},
		{"greedy-random", routing.NewRandomGreedy},
	}
	grids := []shard.Grid{{P: 1, Q: 1}, {P: 2, Q: 2}, {P: 4, Q: 2}}
	seeds := []int64{1, 7, 42}

	for _, base := range bases {
		for _, wl := range workloads {
			for _, pol := range policies {
				for _, seed := range seeds {
					pkts := wl.gen(base.m, rand.New(rand.NewSource(seed)))
					for _, g := range grids {
						name := fmt.Sprintf("%s/%s/%s/seed%d/%s", base.name, wl.name, pol.name, seed, g)
						t.Run(name, func(t *testing.T) {
							lockstep(t, base.m, pol.mk, pkts, seed, g, 300)
						})
					}
				}
			}
		}
	}
}

// TestShardParityExtremeGrids covers degenerate decompositions: one-column
// and one-row grids (every shard a thin strip, so torus wrap can reenter
// the sending shard) and the maximal side x side grid (every shard one
// node, every move a halo transfer).
func TestShardParityExtremeGrids(t *testing.T) {
	for _, base := range []struct {
		name string
		m    *mesh.Mesh
	}{
		{"mesh6", mesh.MustNew(2, 6)},
		{"torus6", mesh.MustNewTorus(2, 6)},
	} {
		pkts := workload.Permutation(base.m, rand.New(rand.NewSource(3)))
		for _, g := range []shard.Grid{{P: 6, Q: 1}, {P: 1, Q: 6}, {P: 6, Q: 6}, {P: 2, Q: 1}} {
			t.Run(fmt.Sprintf("%s/%s", base.name, g), func(t *testing.T) {
				lockstep(t, base.m, routing.NewRandomGreedy, pkts, 11, g, 300)
			})
		}
	}
}

// bouncerPolicy is a deliberately livelocking deterministic policy: a
// packet always exits back through the arc it entered (first good arc on
// its first step). Maximum-matching greedy policies are hard to livelock on
// small instances, so this adversarial policy pins the detector's parity —
// the shards must see the exact same repeated hash at the exact same step.
type bouncerPolicy struct{}

func (bouncerPolicy) Name() string        { return "bouncer" }
func (bouncerPolicy) Deterministic() bool { return true }
func (bouncerPolicy) Clone() sim.Policy   { return bouncerPolicy{} }
func (bouncerPolicy) Route(ns *sim.NodeState, out []mesh.Dir, _ *rand.Rand) {
	for i, p := range ns.Packets {
		if p.EnteredVia != mesh.NoDir {
			out[i] = p.EnteredVia.Opposite()
		} else {
			out[i] = ns.Info(i).Good()[0]
		}
	}
}

// TestShardLivelockParity pins the bit-identical-livelock requirement
// directly: the sharded run must detect the livelock at the same step as
// the reference (the per-step hash comparison in lockstep subsumes the
// repeated-hash history), and both runs must report Livelocked. The
// packets bounce forever between adjacent nodes — including across shard
// boundaries — so halo transfers participate in the cycle.
func TestShardLivelockParity(t *testing.T) {
	m := mesh.MustNewTorus(2, 4)
	pkts := []*sim.Packet{
		sim.NewPacket(0, m.ID([]int{0, 0}), m.ID([]int{2, 0})),
		sim.NewPacket(1, m.ID([]int{1, 1}), m.ID([]int{3, 1})),
		sim.NewPacket(2, m.ID([]int{3, 2}), m.ID([]int{1, 2})),
	}
	mk := func() sim.Policy { return bouncerPolicy{} }
	for _, g := range []shard.Grid{{P: 2, Q: 2}, {P: 4, Q: 1}} {
		t.Run(g.String(), func(t *testing.T) {
			ref, err := sim.New(m, mk(), clonePackets(pkts), sim.Options{Seed: 5, MaxSteps: 200, DetectLivelock: true})
			if err != nil {
				t.Fatal(err)
			}
			defer ref.Close()
			if r, err := ref.Run(); err != nil || !r.Livelocked {
				t.Fatalf("reference run: livelocked=%v, err=%v (the fixture must livelock)", r.Livelocked, err)
			}
			lockstep(t, m, mk, pkts, 5, g, 200)
		})
	}
}

// TestShardNewRejects covers constructor validation.
func TestShardNewRejects(t *testing.T) {
	m2 := mesh.MustNew(2, 8)
	if _, err := shard.New(m2, nil, nil, shard.Options{}); err == nil {
		t.Error("nil policy: want error")
	}
	if _, err := shard.New(nil, routing.NewRandomGreedy(), nil, shard.Options{}); err == nil {
		t.Error("nil mesh: want error")
	}
	m3 := mesh.MustNew(3, 4)
	if _, err := shard.New(m3, routing.NewRandomGreedy(), nil, shard.Options{}); err == nil {
		t.Error("3-dimensional mesh: want error")
	}
	if _, err := shard.New(m2, routing.NewRandomGreedy(), nil, shard.Options{Grid: shard.Grid{P: 9, Q: 1}}); err == nil {
		t.Error("grid wider than the mesh: want error")
	}
	dup := []*sim.Packet{sim.NewPacket(0, 0, 5), sim.NewPacket(0, 1, 6)}
	if _, err := shard.New(m2, routing.NewRandomGreedy(), dup, shard.Options{}); err == nil {
		t.Error("duplicate packet ids: want error")
	}
}
