package shard_test

import (
	"context"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"hotpotato/internal/checkpoint"
	"hotpotato/internal/mesh"
	"hotpotato/internal/routing"
	"hotpotato/internal/shard"
	"hotpotato/internal/sim"
	"hotpotato/internal/workload"
)

func testProblem(t *testing.T, seed int64) (*mesh.Mesh, []*sim.Packet) {
	t.Helper()
	m := mesh.MustNewTorus(2, 8)
	pkts, err := workload.FullLoad(m, 2, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return m, pkts
}

func mustShard(t *testing.T, m *mesh.Mesh, pkts []*sim.Packet, opts shard.Options) *shard.Engine {
	t.Helper()
	e, err := shard.New(m, routing.NewRandomGreedy(), pkts, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	return e
}

func sameResult(t *testing.T, want, got *sim.Result, label string) {
	t.Helper()
	if want.Steps != got.Steps || want.Delivered != got.Delivered || want.Total != got.Total ||
		want.Livelocked != got.Livelocked || want.TotalDeflections != got.TotalDeflections ||
		want.TotalHops != got.TotalHops || want.Reroutes != got.Reroutes {
		t.Fatalf("%s: results diverged:\n  want %+v\n  got  %+v", label, want, got)
	}
}

// TestCheckpointResumeAcrossGrids runs a sharded engine halfway, captures a
// coordinated checkpoint, and resumes it in engines with different
// decompositions — including 1x1 — requiring the resumed runs to finish
// with results identical to the uninterrupted run. This is the
// grid-flexible restore contract: a checkpoint is partition-independent
// state.
func TestCheckpointResumeAcrossGrids(t *testing.T) {
	m, pkts := testProblem(t, 9)
	opts := shard.Options{Grid: shard.Grid{P: 2, Q: 2}, Seed: 9, MaxSteps: 3000, DetectLivelock: false}

	full := mustShard(t, m, clonePackets(pkts), opts)
	want, err := full.Run()
	if err != nil {
		t.Fatal(err)
	}

	half := mustShard(t, m, clonePackets(pkts), opts)
	for i := 0; i < 10 && half.Live() > 0; i++ {
		if err := half.Step(); err != nil {
			t.Fatal(err)
		}
	}
	ck, err := half.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}

	for _, g := range []shard.Grid{{P: 2, Q: 2}, {P: 4, Q: 2}, {P: 1, Q: 1}} {
		t.Run(g.String(), func(t *testing.T) {
			ropts := opts
			ropts.Grid = g
			resumed := mustShard(t, m, nil, ropts)
			if err := resumed.Restore(ck); err != nil {
				t.Fatalf("Restore: %v", err)
			}
			if resumed.Time() != half.Time() || resumed.Live() != half.Live() {
				t.Fatalf("restored at t=%d live=%d, want t=%d live=%d",
					resumed.Time(), resumed.Live(), half.Time(), half.Live())
			}
			if rh, hh := resumed.StateHash(), half.StateHash(); rh != hh {
				t.Fatalf("restored state hash %#x, want %#x", rh, hh)
			}
			got, err := resumed.Run()
			if err != nil {
				t.Fatal(err)
			}
			sameResult(t, want, got, "resumed run")
		})
	}
}

// TestSaveDirLoadDir exercises the on-disk layout in both formats: the
// manifest commit point, the per-shard part files, pruning of superseded
// step directories, and round-trip fidelity.
func TestSaveDirLoadDir(t *testing.T) {
	m, pkts := testProblem(t, 4)
	opts := shard.Options{Grid: shard.Grid{P: 2, Q: 2}, Seed: 4, MaxSteps: 3000}
	e := mustShard(t, m, pkts, opts)

	for _, format := range []checkpoint.Format{checkpoint.JSON, checkpoint.Binary} {
		t.Run(string(format), func(t *testing.T) {
			dir := t.TempDir()
			if err := e.Step(); err != nil {
				t.Fatal(err)
			}
			first, err := e.Checkpoint()
			if err != nil {
				t.Fatal(err)
			}
			if err := shard.SaveDir(dir, first, format); err != nil {
				t.Fatal(err)
			}
			if err := e.Step(); err != nil {
				t.Fatal(err)
			}
			second, err := e.Checkpoint()
			if err != nil {
				t.Fatal(err)
			}
			if err := shard.SaveDir(dir, second, format); err != nil {
				t.Fatal(err)
			}

			// The superseded step directory must be pruned.
			entries, err := os.ReadDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			var stepDirs []string
			for _, ent := range entries {
				if ent.IsDir() && strings.HasPrefix(ent.Name(), "step-") {
					stepDirs = append(stepDirs, ent.Name())
				}
			}
			if len(stepDirs) != 1 {
				t.Fatalf("step dirs after two saves: %v, want exactly one", stepDirs)
			}

			loaded, err := shard.LoadDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			if loaded.Manifest.Time != second.Manifest.Time || loaded.Manifest.Live != second.Manifest.Live {
				t.Fatalf("loaded manifest t=%d live=%d, want t=%d live=%d",
					loaded.Manifest.Time, loaded.Manifest.Live, second.Manifest.Time, second.Manifest.Live)
			}
			if len(loaded.Parts) != len(second.Parts) {
				t.Fatalf("loaded %d parts, want %d", len(loaded.Parts), len(second.Parts))
			}
			for i := range loaded.Parts {
				if len(loaded.Parts[i].Packets) != len(second.Parts[i].Packets) {
					t.Fatalf("part %d: %d packets, want %d", i, len(loaded.Parts[i].Packets), len(second.Parts[i].Packets))
				}
			}

			// Restoring the loaded checkpoint reproduces the engine's state.
			resumed := mustShard(t, m, nil, opts)
			if err := resumed.Restore(loaded); err != nil {
				t.Fatal(err)
			}
			if rh, eh := resumed.StateHash(), e.StateHash(); rh != eh {
				t.Fatalf("restored-from-disk hash %#x, want %#x", rh, eh)
			}
		})
	}
}

// TestRunCheckpointedKillResume emulates a SIGKILL mid-run: the run dies
// abruptly after its third periodic save (the save hook returns an error,
// so — like a killed process — nothing after the last committed checkpoint
// survives), a second engine loads the directory and resumes, and the
// combined run must match the uninterrupted one exactly.
func TestRunCheckpointedKillResume(t *testing.T) {
	m, pkts := testProblem(t, 13)
	opts := shard.Options{Grid: shard.Grid{P: 2, Q: 2}, Seed: 13, MaxSteps: 3000}

	full := mustShard(t, m, clonePackets(pkts), opts)
	want, err := full.Run()
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	errKilled := errors.New("killed")
	saves := 0
	killingSave := func(ck *shard.Checkpoint) error {
		if err := shard.SaveDir(dir, ck, checkpoint.Binary); err != nil {
			return err
		}
		if saves++; saves == 3 {
			return errKilled
		}
		return nil
	}

	killed := mustShard(t, m, clonePackets(pkts), opts)
	if _, err := killed.RunCheckpointed(context.Background(), 2, killingSave); !errors.Is(err, errKilled) {
		t.Fatalf("killed run: err = %v, want errKilled", err)
	}

	ck, err := shard.LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if ck.Manifest.Time != 6 {
		t.Fatalf("last committed checkpoint at t=%d, want 6 (three saves, every 2 steps)", ck.Manifest.Time)
	}
	resumed := mustShard(t, m, nil, opts)
	if err := resumed.Restore(ck); err != nil {
		t.Fatal(err)
	}
	save := func(ck *shard.Checkpoint) error { return shard.SaveDir(dir, ck, checkpoint.Binary) }
	got, err := resumed.RunCheckpointed(context.Background(), 2, save)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, want, got, "kill-resume")
}

// TestRunCheckpointedCancel checks cooperative cancellation on a run that
// can never terminate on its own (the bouncer policy delivers nothing):
// RunCheckpointed must come back with context.Canceled and a final saved
// checkpoint covering all completed steps.
func TestRunCheckpointedCancel(t *testing.T) {
	m := mesh.MustNewTorus(2, 4)
	pkts := []*sim.Packet{sim.NewPacket(0, m.ID([]int{0, 0}), m.ID([]int{2, 0}))}
	e, err := shard.New(m, bouncerPolicy{}, pkts, shard.Options{
		Grid: shard.Grid{P: 2, Q: 2}, Seed: 1, MaxSteps: 1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	ctx, cancel := context.WithCancel(context.Background())
	e.StepHook = func(tstep, live int) {
		if tstep == 50 {
			cancel()
		}
	}
	dir := t.TempDir()
	save := func(ck *shard.Checkpoint) error { return shard.SaveDir(dir, ck, checkpoint.Binary) }
	if _, err := e.RunCheckpointed(ctx, 1000, save); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	ck, err := shard.LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if ck.Manifest.Time != e.Time() {
		t.Fatalf("final save at t=%d, engine stopped at t=%d", ck.Manifest.Time, e.Time())
	}
}

// flakyPolicy panics once, at a given step, in whichever shard routes first
// at that step; every other call delegates. Cloned instances share the
// fired flag, modeling a transient fault that does not recur on retry.
type flakyPolicy struct {
	sim.Policy
	at    int
	fired *atomic.Bool
}

func (f *flakyPolicy) Route(ns *sim.NodeState, out []mesh.Dir, rng *rand.Rand) {
	if ns.Time == f.at && f.fired.CompareAndSwap(false, true) {
		panic("transient shard fault")
	}
	f.Policy.Route(ns, out, rng)
}

func (f *flakyPolicy) Clone() sim.Policy {
	return &flakyPolicy{Policy: f.Policy.(sim.ClonablePolicy).Clone(), at: f.at, fired: f.fired}
}

// TestShardPanicRecovery is the crashed-shard acceptance test: a shard
// panics mid-run, the engine rolls every shard back to the last coordinated
// checkpoint, and the finished run's result matches an uninterrupted run
// bit for bit.
func TestShardPanicRecovery(t *testing.T) {
	m, pkts := testProblem(t, 21)
	opts := shard.Options{Grid: shard.Grid{P: 2, Q: 2}, Seed: 21, MaxSteps: 3000}
	clean := mustShard(t, m, clonePackets(pkts), opts)
	want, err := clean.Run()
	if err != nil {
		t.Fatal(err)
	}

	flaky := &flakyPolicy{Policy: routing.NewRandomGreedy(), at: 5, fired: new(atomic.Bool)}
	ropts := opts
	ropts.MaxRecoveries = 2
	e, err := shard.New(m, flaky, clonePackets(pkts), ropts)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	got, err := e.RunCheckpointed(context.Background(), 0, nil)
	if err != nil {
		t.Fatalf("recovered run: %v", err)
	}
	if e.Recoveries() != 1 {
		t.Fatalf("recoveries = %d, want 1", e.Recoveries())
	}
	if !flaky.fired.Load() {
		t.Fatal("fault never fired; the test proved nothing")
	}
	sameResult(t, want, got, "recovered run")
}

// brokenPolicy panics at every step >= at: recovery replays into the same
// panic, so the engine must give up after MaxRecoveries and surface
// ErrShardPanic instead of retrying forever.
type brokenPolicy struct {
	sim.Policy
	at int
}

func (b *brokenPolicy) Route(ns *sim.NodeState, out []mesh.Dir, rng *rand.Rand) {
	if ns.Time >= b.at {
		panic("permanent shard fault")
	}
	b.Policy.Route(ns, out, rng)
}

func (b *brokenPolicy) Clone() sim.Policy {
	return &brokenPolicy{Policy: b.Policy.(sim.ClonablePolicy).Clone(), at: b.at}
}

func TestShardRecoveryExhausted(t *testing.T) {
	m, pkts := testProblem(t, 2)
	e, err := shard.New(m, &brokenPolicy{Policy: routing.NewRandomGreedy(), at: 3}, pkts, shard.Options{
		Grid: shard.Grid{P: 2, Q: 2}, Seed: 2, MaxSteps: 3000, MaxRecoveries: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if _, err := e.Run(); !errors.Is(err, sim.ErrPolicyPanic) {
		t.Fatalf("permanent fault: err = %v, want ErrPolicyPanic", err)
	}
	if e.Recoveries() != 2 {
		t.Fatalf("recoveries = %d, want 2 (exhausted)", e.Recoveries())
	}
}

// TestRestoreGuards: mismatched configuration and torn checkpoints fail
// loudly with ErrBadCheckpoint.
func TestRestoreGuards(t *testing.T) {
	m, pkts := testProblem(t, 6)
	opts := shard.Options{Grid: shard.Grid{P: 2, Q: 2}, Seed: 6, MaxSteps: 3000}
	e := mustShard(t, m, pkts, opts)
	if err := e.Step(); err != nil {
		t.Fatal(err)
	}
	ck, err := e.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}

	t.Run("seed-mismatch", func(t *testing.T) {
		bad := opts
		bad.Seed = 7
		fresh := mustShard(t, m, nil, bad)
		if err := fresh.Restore(ck); !errors.Is(err, shard.ErrBadCheckpoint) {
			t.Fatalf("err = %v, want ErrBadCheckpoint", err)
		}
	})
	t.Run("mesh-mismatch", func(t *testing.T) {
		other := mesh.MustNew(2, 8) // no wrap
		fresh := mustShard(t, other, nil, opts)
		if err := fresh.Restore(ck); !errors.Is(err, shard.ErrBadCheckpoint) {
			t.Fatalf("err = %v, want ErrBadCheckpoint", err)
		}
	})
	t.Run("torn-parts", func(t *testing.T) {
		torn := *ck
		torn.Parts = append([]shard.ShardPart(nil), ck.Parts...)
		torn.Parts[1].Time = ck.Manifest.Time + 1
		fresh := mustShard(t, m, nil, opts)
		if err := fresh.Restore(&torn); !errors.Is(err, shard.ErrBadCheckpoint) {
			t.Fatalf("err = %v, want ErrBadCheckpoint", err)
		}
	})
	t.Run("used-engine", func(t *testing.T) {
		if err := e.Restore(ck); !errors.Is(err, shard.ErrBadCheckpoint) {
			t.Fatalf("err = %v, want ErrBadCheckpoint", err)
		}
	})
	t.Run("missing-manifest", func(t *testing.T) {
		if _, err := shard.LoadDir(filepath.Join(t.TempDir(), "nope")); err == nil {
			t.Fatal("want error for missing directory")
		}
	})
}
