// Package shard runs one routing problem across a spatially-decomposed
// mesh: the n x n network is cut into a P x Q grid of rectangular subgrids
// (mesh.Subgrid views), each stepped by its own goroutine against its own
// flat tables, with a halo-exchange phase moving boundary-crossing packets
// between neighboring shards at every step barrier.
//
// Determinism is the package's headline contract: for the same seed, a
// sharded run produces the exact same step-by-step configurations — and
// therefore a bit-identical livelock state hash — as the equivalent
// single-shard run, for every shard geometry. Three mechanisms deliver
// this, spelled out in DESIGN.md §10:
//
//   - Policies route against mesh.Subgrid views whose node ids, good
//     directions and distances are global, so a node's routing inputs are
//     independent of which shard owns it.
//   - Tie-break randomness is derived per (seed, step, global node) with
//     sim.NodeSeed — the engine's own parallel-path derivation — so the
//     stream a node draws from is partition-independent.
//   - Halo-transfer application is canonically ordered: each shard merges
//     its internal moves with its neighbors' incoming moves by ascending
//     global source node, which reproduces exactly the single engine's
//     global move-application order restricted to the shard (per-node
//     queue order is routing-relevant state, so this ordering is what
//     makes the configurations — not just the aggregates — identical).
package shard

import (
	"fmt"
	"strconv"
	"strings"

	"hotpotato/internal/mesh"
)

// Grid is the shard decomposition: P columns along the x axis by Q rows
// along the y axis, P*Q shards total. The zero value means 1x1 (a single
// shard spanning the whole mesh).
type Grid struct {
	P, Q int
}

// ParseGrid parses a "PxQ" specification, e.g. "4x2" for four shard columns
// by two shard rows.
func ParseGrid(s string) (Grid, error) {
	p, q, ok := strings.Cut(strings.ToLower(strings.TrimSpace(s)), "x")
	if !ok {
		return Grid{}, fmt.Errorf("shard: grid %q is not of the form PxQ", s)
	}
	pv, err1 := strconv.Atoi(p)
	qv, err2 := strconv.Atoi(q)
	if err1 != nil || err2 != nil || pv < 1 || qv < 1 {
		return Grid{}, fmt.Errorf("shard: grid %q is not of the form PxQ with P, Q >= 1", s)
	}
	return Grid{P: pv, Q: qv}, nil
}

// norm returns the grid with the zero value normalized to 1x1.
func (g Grid) norm() Grid {
	if g.P == 0 && g.Q == 0 {
		return Grid{1, 1}
	}
	return g
}

// Count returns the number of shards, P*Q.
func (g Grid) Count() int { g = g.norm(); return g.P * g.Q }

// String renders the grid as "PxQ".
func (g Grid) String() string { g = g.norm(); return fmt.Sprintf("%dx%d", g.P, g.Q) }

// partition maps global nodes to owning shards: the side is split into P
// column bands and Q row bands of near-equal width (band b spans
// [b*side/P, (b+1)*side/P)), and shard (col, row) has index row*P + col.
type partition struct {
	grid Grid
	side int
	// colOfX[x] and rowOfY[y] are the owning band of each coordinate.
	colOfX []int32
	rowOfY []int32
}

func newPartition(m *mesh.Mesh, g Grid) (*partition, error) {
	g = g.norm()
	if m.Dim() != 2 {
		return nil, fmt.Errorf("shard: sharded execution needs a 2-dimensional mesh, have dim %d", m.Dim())
	}
	side := m.Side()
	if g.P < 1 || g.Q < 1 || g.P > side || g.Q > side {
		return nil, fmt.Errorf("shard: grid %s does not fit a side-%d mesh (need 1 <= P, Q <= %d)", g, side, side)
	}
	pt := &partition{
		grid:   g,
		side:   side,
		colOfX: make([]int32, side),
		rowOfY: make([]int32, side),
	}
	for c := 0; c < g.P; c++ {
		for x := c * side / g.P; x < (c+1)*side/g.P; x++ {
			pt.colOfX[x] = int32(c)
		}
	}
	for r := 0; r < g.Q; r++ {
		for y := r * side / g.Q; y < (r+1)*side/g.Q; y++ {
			pt.rowOfY[y] = int32(r)
		}
	}
	return pt, nil
}

// bounds returns the rectangle of shard (col, row).
func (pt *partition) bounds(col, row int) (x0, y0, w, h int) {
	x0 = col * pt.side / pt.grid.P
	x1 := (col + 1) * pt.side / pt.grid.P
	y0 = row * pt.side / pt.grid.Q
	y1 := (row + 1) * pt.side / pt.grid.Q
	return x0, y0, x1 - x0, y1 - y0
}

// owner returns the index of the shard owning the global node.
func (pt *partition) owner(id mesh.NodeID) int {
	x := int(id) % pt.side
	y := int(id) / pt.side
	return int(pt.rowOfY[y])*pt.grid.P + int(pt.colOfX[x])
}
