package benchfmt

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: hotpotato
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkE8FullLoad            	    8776	    257369 ns/op	   72969 B/op	     286 allocs/op
BenchmarkEngineStepSteadyState 	   33282	     69993 ns/op	       1 B/op	       0 allocs/op
BenchmarkValidationOverhead/greedy-8         	     100	  10000000 ns/op
BenchmarkEngineThroughput-8    	     152	   5068495 ns/op	 8996322 hops/s	  318100 B/op	    1290 allocs/op
PASS
ok  	hotpotato	5.536s
`

func TestParse(t *testing.T) {
	rep, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" || rep.Pkg != "hotpotato" {
		t.Errorf("bad header: %+v", rep)
	}
	if !strings.Contains(rep.CPU, "Xeon") {
		t.Errorf("cpu not captured: %q", rep.CPU)
	}
	if len(rep.Benchmarks) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4", len(rep.Benchmarks))
	}

	e8, ok := rep.Lookup("E8FullLoad")
	if !ok {
		t.Fatal("E8FullLoad missing")
	}
	if e8.Procs != 1 || e8.Iterations != 8776 {
		t.Errorf("E8 header fields: %+v", e8)
	}
	if e8.Metrics["ns/op"] != 257369 || e8.Metrics["allocs/op"] != 286 {
		t.Errorf("E8 metrics: %+v", e8.Metrics)
	}

	sub, ok := rep.Lookup("ValidationOverhead/greedy")
	if !ok {
		t.Fatal("subbenchmark missing")
	}
	if sub.Procs != 8 {
		t.Errorf("subbenchmark procs = %d, want 8", sub.Procs)
	}

	thr, _ := rep.Lookup("EngineThroughput")
	if thr.Metrics["hops/s"] != 8996322 {
		t.Errorf("custom metric lost: %+v", thr.Metrics)
	}
}

func TestParseSkipsNonResultLines(t *testing.T) {
	in := "BenchmarkE1Theorem20\nsome stray log line\nBenchmarkE1Theorem20-4   10   5.0 ns/op\n"
	rep, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 1 || rep.Benchmarks[0].Procs != 4 {
		t.Fatalf("got %+v", rep.Benchmarks)
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	for _, in := range []string{
		"BenchmarkX  notanumber  5 ns/op\n",
		"BenchmarkX  10  5 ns/op trailing\n",
		"BenchmarkX  10  bad ns/op\n",
	} {
		if _, err := Parse(strings.NewReader(in)); err == nil {
			t.Errorf("no error for %q", in)
		}
	}
}

func TestSplitProcsDashedNames(t *testing.T) {
	for _, tc := range []struct {
		in    string
		name  string
		procs int
	}{
		{"E8FullLoad-8", "E8FullLoad", 8},
		{"Overhead/with-tracker", "Overhead/with-tracker", 1},
		{"Overhead/with-tracker-16", "Overhead/with-tracker", 16},
		{"Plain", "Plain", 1},
	} {
		name, procs := splitProcs(tc.in)
		if name != tc.name || procs != tc.procs {
			t.Errorf("splitProcs(%q) = (%q, %d), want (%q, %d)", tc.in, name, procs, tc.name, tc.procs)
		}
	}
}
