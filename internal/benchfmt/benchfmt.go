// Package benchfmt parses the text output of `go test -bench` into a
// structured report, so benchmark runs can be committed as JSON
// (BENCH_PR2.json) and diffed across PRs by the regression harness.
//
// The format it understands is the standard one-line-per-benchmark form:
//
//	BenchmarkE8FullLoad-8   8776   257369 ns/op   72969 B/op   286 allocs/op   63.0 steps
//
// plus the goos/goarch/pkg/cpu header lines. Unknown lines are skipped, so
// the parser is safe to point at raw `go test` output including PASS/ok
// trailers and subtest logging.
package benchfmt

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	// Name is the benchmark name as printed, without the "Benchmark"
	// prefix and without the -procs suffix (e.g. "E8FullLoad" or
	// "ValidationOverhead/greedy").
	Name string `json:"name"`
	// Procs is the GOMAXPROCS suffix of the result line (1 when absent).
	Procs int `json:"procs"`
	// Iterations is b.N for the measured run.
	Iterations int64 `json:"iterations"`
	// Metrics maps unit -> value for every "<value> <unit>" pair on the
	// line: ns/op, B/op, allocs/op, and any b.ReportMetric custom units
	// such as steps or hops/s.
	Metrics map[string]float64 `json:"metrics"`
}

// Report is a full parsed benchmark run.
type Report struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Parse reads `go test -bench` output and returns the structured report.
// It fails only on a malformed benchmark line, not on interleaved non-
// benchmark output.
func Parse(r io.Reader) (*Report, error) {
	rep := &Report{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			rep.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			b, ok, err := parseLine(line)
			if err != nil {
				return nil, err
			}
			if ok {
				rep.Benchmarks = append(rep.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("benchfmt: %w", err)
	}
	return rep, nil
}

// parseLine parses one result line. A "Benchmark..." line with no fields
// after the name (the bare announcement printed under -v) is skipped, not
// an error.
func parseLine(line string) (Benchmark, bool, error) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return Benchmark{}, false, nil
	}
	name, procs := splitProcs(strings.TrimPrefix(fields[0], "Benchmark"))
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false, fmt.Errorf("benchfmt: bad iteration count in %q: %w", line, err)
	}
	b := Benchmark{Name: name, Procs: procs, Iterations: iters, Metrics: make(map[string]float64)}
	rest := fields[2:]
	if len(rest)%2 != 0 {
		return Benchmark{}, false, fmt.Errorf("benchfmt: odd value/unit pairing in %q", line)
	}
	for i := 0; i < len(rest); i += 2 {
		v, err := strconv.ParseFloat(rest[i], 64)
		if err != nil {
			return Benchmark{}, false, fmt.Errorf("benchfmt: bad value %q in %q: %w", rest[i], line, err)
		}
		b.Metrics[rest[i+1]] = v
	}
	return b, true, nil
}

// splitProcs splits the trailing "-<procs>" GOMAXPROCS marker off a
// benchmark name. Names may themselves contain dashes, so only a trailing
// all-digit segment counts.
func splitProcs(name string) (string, int) {
	i := strings.LastIndexByte(name, '-')
	if i < 0 || i == len(name)-1 {
		return name, 1
	}
	p, err := strconv.Atoi(name[i+1:])
	if err != nil || p <= 0 {
		return name, 1
	}
	return name[:i], p
}

// Lookup returns the first benchmark with the given name.
func (r *Report) Lookup(name string) (Benchmark, bool) {
	for _, b := range r.Benchmarks {
		if b.Name == name {
			return b, true
		}
	}
	return Benchmark{}, false
}
