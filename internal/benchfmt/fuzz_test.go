package benchfmt

import (
	"strings"
	"testing"
)

// FuzzParseBench hammers the benchmark-output parser with arbitrary text.
// Parse sits on the untrusted boundary of the regression harness — it is
// pointed at raw `go test` output and at JSON baselines from disk — so it
// must never panic, and what it does accept must satisfy the parser's own
// invariants (a "Benchmark" prefix stripped, positive procs, metrics in
// value/unit pairs).
func FuzzParseBench(f *testing.F) {
	f.Add("BenchmarkE8FullLoad-8   8776   257369 ns/op   72969 B/op   286 allocs/op   63.0 steps\n")
	f.Add("goos: linux\ngoarch: amd64\npkg: hotpotato/internal/sim\ncpu: weird cpu - with-dashes\n")
	f.Add("BenchmarkName 10\nPASS\nok  \thotpotato\t0.5s\n")
	f.Add("BenchmarkOnly\n")                             // bare -v announcement
	f.Add("BenchmarkOdd 5 123 ns/op trailing\n")         // odd value/unit pairing
	f.Add("BenchmarkBadIter notanumber ns/op\n")         // bad iteration count
	f.Add("BenchmarkNaN 1 NaN ns/op\n")                  // NaN parses as a float
	f.Add("BenchmarkSub/case-with-dash-16 4 2 ns/op\n")  // subtest + procs suffix
	f.Add("Benchmark-12 7 1 ns/op\n")                    // empty name, procs only
	f.Add("BenchmarkHuge 9223372036854775807 1 ns/op\n") // max int64 iterations
	f.Add(strings.Repeat("BenchmarkA 1 1 ns/op\n", 100))

	f.Fuzz(func(t *testing.T, input string) {
		rep, err := Parse(strings.NewReader(input))
		if err != nil {
			return // rejecting malformed input is fine; panicking is not
		}
		if rep == nil {
			t.Fatal("nil report with nil error")
		}
		for _, b := range rep.Benchmarks {
			if strings.HasPrefix(b.Name, "Benchmark") && b.Name != "Benchmark" {
				// The prefix must be stripped exactly once; a name that
				// still starts with it means the line was double-prefixed,
				// which Parse should have treated as part of the name only
				// when the input truly repeated it.
				if !strings.Contains(input, "Benchmark"+b.Name) {
					t.Errorf("name %q kept its Benchmark prefix", b.Name)
				}
			}
			if b.Procs <= 0 {
				t.Errorf("benchmark %q has non-positive procs %d", b.Name, b.Procs)
			}
			if b.Iterations < 0 {
				t.Errorf("benchmark %q has negative iterations %d", b.Name, b.Iterations)
			}
			if b.Metrics == nil {
				t.Errorf("benchmark %q has nil metrics map", b.Name)
			}
			if _, ok := rep.Lookup(b.Name); !ok {
				t.Errorf("benchmark %q not found by Lookup", b.Name)
			}
		}
	})
}
