package run

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
)

// JournalVersion is the schema version of the journal header line.
const JournalVersion = 1

// ErrBadJournal is returned when a journal file cannot be used: wrong
// header, version from a future build, or a label that does not match the
// grid being executed (resuming a sweep against the journal of a different
// one would silently mix results).
var ErrBadJournal = errors.New("run: journal does not match this run")

// header is the first line of every journal file.
type header struct {
	Journal string `json:"journal"`
	Version int    `json:"version"`
	// Label identifies the grid (binary name plus the flags that shape it);
	// resume refuses a journal whose label differs.
	Label string `json:"label"`
}

// Entry is one journal line: the fate of one cell.
type Entry struct {
	Key      string `json:"key"`
	Status   string `json:"status"` // StatusOK or StatusFailed
	Attempts int    `json:"attempts"`
	// ElapsedMS is the wall time of the final attempt, in milliseconds.
	ElapsedMS int64 `json:"elapsed_ms"`
	// Result is the cell's opaque payload (present for StatusOK).
	Result json.RawMessage `json:"result,omitempty"`
	// Error is the last attempt's failure (present for StatusFailed).
	Error string `json:"error,omitempty"`
}

// Cell fates recorded in the journal.
const (
	StatusOK     = "ok"
	StatusFailed = "failed"
)

// Journal is an append-only JSONL record of completed cells. Every Record
// is written, flushed and fsynced as one line, so a crash or kill at any
// point loses at most the cells still in flight — never a finished one.
// All methods are safe for concurrent use.
type Journal struct {
	mu   sync.Mutex
	f    *os.File
	done map[string]Entry
}

// OpenJournal creates the journal at path (truncating any previous file)
// and writes the header. label ties the journal to one specific grid.
func OpenJournal(path, label string) (*Journal, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("run: journal: %w", err)
	}
	j := &Journal{f: f, done: make(map[string]Entry)}
	hdr, err := json.Marshal(header{Journal: "hotpotato-run", Version: JournalVersion, Label: label})
	if err != nil {
		f.Close()
		return nil, err
	}
	if err := j.writeLine(hdr); err != nil {
		f.Close()
		return nil, err
	}
	return j, nil
}

// ResumeJournal opens an existing journal for appending, after loading the
// fates it already records. The header must match label (pass "" to skip
// the check). A torn final line — the signature of a hard kill mid-write —
// is tolerated and ignored; torn lines elsewhere are corruption and fail.
func ResumeJournal(path, label string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, fmt.Errorf("run: journal: %w", err)
	}
	j := &Journal{f: f, done: make(map[string]Entry)}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 16*1024*1024)
	lineNo := 0
	var torn int        // line number of a previously seen unparseable line
	var tornStart int64 // byte offset where the torn line begins
	var offset int64    // byte offset of the line about to be processed
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		lineStart := offset
		offset += int64(len(line)) + 1 // every line we write ends in '\n'
		if len(line) == 0 {
			continue
		}
		if torn != 0 {
			f.Close()
			return nil, fmt.Errorf("%w: %s: corrupt line %d followed by more entries", ErrBadJournal, path, torn)
		}
		if lineNo == 1 {
			var h header
			if err := json.Unmarshal(line, &h); err != nil || h.Journal != "hotpotato-run" {
				f.Close()
				return nil, fmt.Errorf("%w: %s is not a run journal", ErrBadJournal, path)
			}
			if h.Version > JournalVersion {
				f.Close()
				return nil, fmt.Errorf("%w: %s: journal version %d, this build reads %d", ErrBadJournal, path, h.Version, JournalVersion)
			}
			if label != "" && h.Label != label {
				f.Close()
				return nil, fmt.Errorf("%w: %s records %q, this run is %q", ErrBadJournal, path, h.Label, label)
			}
			continue
		}
		var e Entry
		if err := json.Unmarshal(line, &e); err != nil || e.Key == "" {
			torn, tornStart = lineNo, lineStart // tolerated iff nothing follows
			continue
		}
		j.done[e.Key] = e // later entries win
	}
	if err := sc.Err(); err != nil {
		f.Close()
		return nil, fmt.Errorf("run: journal %s: %w", path, err)
	}
	if lineNo == 0 {
		f.Close()
		return nil, fmt.Errorf("%w: %s is empty", ErrBadJournal, path)
	}
	if torn != 0 {
		// Chop the torn tail so the file is clean JSONL again and the next
		// entry starts where the interrupted write began.
		if err := f.Truncate(tornStart); err != nil {
			f.Close()
			return nil, fmt.Errorf("run: journal %s: %w", path, err)
		}
		if _, err := f.Seek(tornStart, io.SeekStart); err != nil {
			f.Close()
			return nil, fmt.Errorf("run: journal %s: %w", path, err)
		}
		return j, nil
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, fmt.Errorf("run: journal %s: %w", path, err)
	}
	return j, nil
}

// Completed returns the recorded successful fate of a cell, if any.
func (j *Journal) Completed(key string) (Entry, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	e, ok := j.done[key]
	if !ok || e.Status != StatusOK {
		return Entry{}, false
	}
	return e, true
}

// Record appends one entry and forces it to stable storage before
// returning, so a recorded cell survives any subsequent crash.
func (j *Journal) Record(e Entry) error {
	buf, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("run: journal: %w", err)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.done[e.Key] = e
	return j.writeLine(buf)
}

// writeLine appends buf + newline and fsyncs. Callers hold j.mu (or have
// exclusive access during Open).
func (j *Journal) writeLine(buf []byte) error {
	if _, err := j.f.Write(append(buf, '\n')); err != nil {
		return fmt.Errorf("run: journal write: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("run: journal sync: %w", err)
	}
	return nil
}

// Close releases the journal file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}
