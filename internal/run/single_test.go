package run

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"
)

func TestSingleSuccess(t *testing.T) {
	res := Single(context.Background(), Cell{
		Key:  "ok",
		Work: func(context.Context) (json.RawMessage, error) { return json.RawMessage(`{"x":1}`), nil },
	}, Options{})
	if res.Status != StatusOK || res.Attempts != 1 {
		t.Fatalf("got %+v, want ok in 1 attempt", res)
	}
	if string(res.Result) != `{"x":1}` {
		t.Fatalf("payload %q", res.Result)
	}
}

func TestSingleRetriesThenSucceeds(t *testing.T) {
	calls := 0
	res := Single(context.Background(), Cell{
		Key: "flaky",
		Work: func(context.Context) (json.RawMessage, error) {
			calls++
			if calls < 3 {
				return nil, errors.New("transient")
			}
			return json.RawMessage(`1`), nil
		},
	}, Options{MaxAttempts: 5, BackoffBase: time.Millisecond, BackoffMax: 2 * time.Millisecond})
	if res.Status != StatusOK || res.Attempts != 3 {
		t.Fatalf("got %+v, want ok in 3 attempts", res)
	}
}

func TestSingleIsolatesPanic(t *testing.T) {
	res := Single(context.Background(), Cell{
		Key:  "boom",
		Work: func(context.Context) (json.RawMessage, error) { panic("kaboom") },
	}, Options{})
	if res.Status != StatusFailed || !strings.Contains(res.Err, "kaboom") {
		t.Fatalf("got %+v, want contained panic", res)
	}
}

func TestSingleTimeout(t *testing.T) {
	res := Single(context.Background(), Cell{
		Key: "slow",
		Work: func(ctx context.Context) (json.RawMessage, error) {
			<-ctx.Done() // honour the attempt deadline
			return nil, ctx.Err()
		},
	}, Options{CellTimeout: 10 * time.Millisecond})
	if res.Status != StatusFailed {
		t.Fatalf("got %+v, want timeout failure", res)
	}
}

func TestSingleCancelSuppressesRetries(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	calls := 0
	res := Single(ctx, Cell{
		Key: "once",
		Work: func(context.Context) (json.RawMessage, error) {
			calls++
			return nil, errors.New("nope")
		},
	}, Options{MaxAttempts: 10, BackoffBase: time.Millisecond})
	if calls != 1 {
		t.Fatalf("work ran %d times under a cancelled supervisor, want 1", calls)
	}
	if res.Status != StatusFailed || !strings.Contains(res.Err, "retries abandoned") {
		t.Fatalf("got %+v, want abandoned retries", res)
	}
}
