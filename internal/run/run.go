// Package run executes a grid of independent work cells under supervision:
// bounded parallelism, per-cell panic isolation and timeout, retry with
// exponential backoff and jitter, and a crash-safe JSONL journal of fates.
// It is the machinery behind cmd/sweep and cmd/experiments — a sweep that
// dies 90% of the way through a 400-cell grid resumes from its journal and
// reruns only the missing cells.
//
// The model is deliberately minimal: a Cell is a key plus a function that
// returns an opaque JSON payload. The supervisor neither interprets the
// payload nor orders cell execution beyond submission order; callers
// reassemble results in whatever order they need from Report.Cells.
package run

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"runtime/debug"
	"sync"
	"time"

	"hotpotato/internal/rng"
)

// Cell is one unit of supervised work. Key must be unique within a grid and
// stable across processes — it is how a resumed run recognises finished
// work in the journal. Work receives a context that is cancelled when the
// cell's timeout expires; it should return the cell's result as JSON.
type Cell struct {
	Key  string
	Work func(ctx context.Context) (json.RawMessage, error)
}

// Options configures the supervisor.
type Options struct {
	// Workers bounds how many cells run concurrently. <= 0 means 1.
	Workers int
	// CellTimeout bounds one attempt of one cell. The attempt's context is
	// cancelled at the deadline; if the work function ignores its context
	// the supervisor abandons the attempt anyway (the goroutine is leaked
	// rather than letting one hung cell wedge the whole grid). 0 = no limit.
	CellTimeout time.Duration
	// MaxAttempts caps how many times a failing cell is tried. <= 0 means 1
	// (no retry).
	MaxAttempts int
	// BackoffBase is the delay before the first retry; each further retry
	// doubles it, capped at BackoffMax. Jitter of ±50% is applied, derived
	// deterministically from Seed, the cell key, and the attempt number.
	// Defaults: 100ms base, 5s cap.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Seed feeds the backoff jitter so reruns space retries identically.
	Seed int64
	// Journal, when non-nil, records every finished cell and lets cells
	// already recorded as ok be skipped (their payload is replayed).
	Journal *Journal
	// Log, when non-nil, receives one human-readable progress line per
	// finished cell.
	Log io.Writer
}

// CellResult is the in-memory fate of one cell after Execute.
type CellResult struct {
	Key      string
	Status   string // StatusOK or StatusFailed
	Attempts int
	Elapsed  time.Duration
	Result   json.RawMessage // payload when Status == StatusOK
	Err      string          // last failure when Status == StatusFailed
	Resumed  bool            // replayed from the journal, not executed
}

// Report is the outcome of one Execute call.
type Report struct {
	// Cells holds one entry per input cell, in input order. Entries are nil
	// for cells that were never dispatched because the run was interrupted.
	Cells []*CellResult
	// OK, Failed and Resumed count fates; Resumed cells also count in OK.
	OK, Failed, Resumed int
	// Interrupted is true when the context was cancelled before every cell
	// was dispatched.
	Interrupted bool
}

// Failures returns the results of cells that exhausted their attempts.
func (r *Report) Failures() []*CellResult {
	var out []*CellResult
	for _, c := range r.Cells {
		if c != nil && c.Status == StatusFailed {
			out = append(out, c)
		}
	}
	return out
}

// ErrInterrupted is returned (wrapped with context.Cause) when Execute
// stops dispatching because its context was cancelled. In-flight cells are
// still finished and journaled before Execute returns.
var ErrInterrupted = errors.New("run: interrupted before all cells completed")

// Execute runs every cell under the supervision policy in opts. It returns
// a non-nil Report even on error: on interruption the report covers the
// cells that did finish (all of them journaled), so a later Execute against
// the same journal completes just the remainder.
//
// Errors inside cells do not abort the grid — they are retried per opts,
// then recorded as failed and reported; the caller decides whether a
// partially failed grid is fatal. Execute itself only returns an error for
// supervisor-level problems: duplicate keys, journal I/O, interruption.
func Execute(ctx context.Context, cells []Cell, opts Options) (*Report, error) {
	seen := make(map[string]struct{}, len(cells))
	for _, c := range cells {
		if c.Key == "" || c.Work == nil {
			return nil, fmt.Errorf("run: cell %q has empty key or nil work", c.Key)
		}
		if _, dup := seen[c.Key]; dup {
			return nil, fmt.Errorf("run: duplicate cell key %q", c.Key)
		}
		seen[c.Key] = struct{}{}
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = 1
	}
	if opts.MaxAttempts <= 0 {
		opts.MaxAttempts = 1
	}
	if opts.BackoffBase <= 0 {
		opts.BackoffBase = 100 * time.Millisecond
	}
	if opts.BackoffMax <= 0 {
		opts.BackoffMax = 5 * time.Second
	}

	report := &Report{Cells: make([]*CellResult, len(cells))}

	// Replay cells the journal already records as ok.
	todo := make([]int, 0, len(cells))
	for i, c := range cells {
		if opts.Journal != nil {
			if e, ok := opts.Journal.Completed(c.Key); ok {
				report.Cells[i] = &CellResult{
					Key:      c.Key,
					Status:   StatusOK,
					Attempts: e.Attempts,
					Elapsed:  time.Duration(e.ElapsedMS) * time.Millisecond,
					Result:   e.Result,
					Resumed:  true,
				}
				report.OK++
				report.Resumed++
				continue
			}
		}
		todo = append(todo, i)
	}

	var (
		mu      sync.Mutex // guards report counters and journal error
		jerr    error      // first journal failure, surfaced after the pool drains
		wg      sync.WaitGroup
		jobs    = make(chan int)
		started = report.Resumed
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				res := runCell(ctx, cells[i], opts)
				mu.Lock()
				report.Cells[i] = res
				if res.Status == StatusOK {
					report.OK++
				} else {
					report.Failed++
				}
				started++
				n := started
				if opts.Journal != nil {
					if err := opts.Journal.Record(Entry{
						Key:       res.Key,
						Status:    res.Status,
						Attempts:  res.Attempts,
						ElapsedMS: res.Elapsed.Milliseconds(),
						Result:    res.Result,
						Error:     res.Err,
					}); err != nil && jerr == nil {
						jerr = err
					}
				}
				mu.Unlock()
				if opts.Log != nil {
					suffix := ""
					if res.Status == StatusFailed {
						suffix = ": " + res.Err
					}
					fmt.Fprintf(opts.Log, "cell %d/%d %s %s (%d attempt(s), %s)%s\n",
						n, len(cells), res.Status, res.Key, res.Attempts,
						res.Elapsed.Round(time.Millisecond), suffix)
				}
			}
		}()
	}

	interrupted := false
dispatch:
	for _, i := range todo {
		select {
		case <-ctx.Done():
			interrupted = true
			break dispatch
		case jobs <- i:
		}
	}
	close(jobs)
	wg.Wait() // in-flight cells finish and are journaled before we return

	if jerr != nil {
		return report, jerr
	}
	if interrupted {
		report.Interrupted = true
		return report, fmt.Errorf("%w: %v", ErrInterrupted, context.Cause(ctx))
	}
	return report, nil
}

// Single executes one cell under the supervision policy in opts — panic
// isolation, per-attempt timeout, retry with jittered backoff — without the
// grid bookkeeping of Execute. It is the building block for callers that
// receive work continuously instead of as a batch (cmd/hotpotatod's job
// workers): each arriving job becomes one supervised cell. The context is
// consulted between attempts only; cancelling it suppresses retries but
// lets the attempt in flight finish (bounded by CellTimeout). Journal and
// Log options are ignored. The result is never nil.
func Single(ctx context.Context, c Cell, opts Options) *CellResult {
	if opts.MaxAttempts <= 0 {
		opts.MaxAttempts = 1
	}
	if opts.BackoffBase <= 0 {
		opts.BackoffBase = 100 * time.Millisecond
	}
	if opts.BackoffMax <= 0 {
		opts.BackoffMax = 5 * time.Second
	}
	return runCell(ctx, c, opts)
}

// runCell executes one cell: attempts with panic isolation, timeout, and
// jittered exponential backoff between attempts. The supervisor context is
// only consulted between attempts — an interrupt lets the current attempt
// finish (bounded by CellTimeout) but suppresses retries.
func runCell(ctx context.Context, c Cell, opts Options) *CellResult {
	res := &CellResult{Key: c.Key}
	for attempt := 1; ; attempt++ {
		res.Attempts = attempt
		start := time.Now()
		payload, err := runAttempt(c, opts.CellTimeout)
		res.Elapsed = time.Since(start)
		if err == nil {
			res.Status = StatusOK
			res.Result = payload
			return res
		}
		res.Status = StatusFailed
		res.Err = err.Error()
		if attempt >= opts.MaxAttempts {
			return res
		}
		if !sleepBackoff(ctx, opts, c.Key, attempt) {
			res.Err += " (retries abandoned: " + context.Cause(ctx).Error() + ")"
			return res
		}
	}
}

// runAttempt invokes the work function in its own goroutine so a panic is
// contained and a deadline overrun abandons the attempt instead of wedging
// the worker.
func runAttempt(c Cell, timeout time.Duration) (json.RawMessage, error) {
	ctx := context.Background()
	cancel := context.CancelFunc(func() {})
	if timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, timeout)
	}
	defer cancel()

	type outcome struct {
		payload json.RawMessage
		err     error
	}
	ch := make(chan outcome, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				ch <- outcome{err: fmt.Errorf("panic: %v\n%s", r, debug.Stack())}
			}
		}()
		payload, err := c.Work(ctx)
		ch <- outcome{payload: payload, err: err}
	}()
	select {
	case o := <-ch:
		return o.payload, o.err
	case <-ctx.Done():
		return nil, fmt.Errorf("attempt timed out after %s", timeout)
	}
}

// backoffDelay computes the jittered exponential delay before retrying
// attempt. The jitter factor lies in [0.5, 1.5) and is derived
// deterministically from the seed, the cell key and the attempt number, so
// a rerun spaces its retries identically while distinct cells stay
// dispersed (no thundering herd after a shared transient failure).
func backoffDelay(opts Options, key string, attempt int) time.Duration {
	delay := opts.BackoffBase << (attempt - 1)
	if delay > opts.BackoffMax || delay <= 0 { // <= 0 guards shift overflow
		delay = opts.BackoffMax
	}
	h := fnv.New64a()
	h.Write([]byte(key))
	u := uint64(rng.Mix(opts.Seed, int64(h.Sum64()), int64(attempt)))
	frac := float64(u>>11) / (1 << 53) // [0, 1)
	return time.Duration((0.5 + frac) * float64(delay))
}

// BackoffDelay computes the supervisor's jittered exponential retry delay
// without the rest of the supervision machinery: base<<(attempt-1) capped at
// max (attempt is 1-based), scaled by a deterministic jitter factor in
// [0.5, 1.5) derived from (seed, key, attempt). Exported for retry loops
// that manage their own attempts — the distributed shard coordinator spaces
// its transport retries with it — so every retrying subsystem disperses
// identically and reproducibly. Non-positive base/max fall back to the
// supervisor defaults (100ms, 5s).
func BackoffDelay(base, max time.Duration, seed int64, key string, attempt int) time.Duration {
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	if max <= 0 {
		max = 5 * time.Second
	}
	return backoffDelay(Options{BackoffBase: base, BackoffMax: max, Seed: seed}, key, attempt)
}

// sleepBackoff waits the jittered exponential delay before the next
// attempt. It returns false if the supervisor context is cancelled first.
func sleepBackoff(ctx context.Context, opts Options, key string, attempt int) bool {
	t := time.NewTimer(backoffDelay(opts, key, attempt))
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
