package run

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func payload(s string) json.RawMessage { return json.RawMessage(fmt.Sprintf("%q", s)) }

// okCell returns its own key as payload and counts invocations.
func okCell(key string, calls *atomic.Int64) Cell {
	return Cell{Key: key, Work: func(ctx context.Context) (json.RawMessage, error) {
		if calls != nil {
			calls.Add(1)
		}
		return payload(key), nil
	}}
}

// TestExecuteAllOK: every cell runs exactly once, results land in input
// order, counters add up.
func TestExecuteAllOK(t *testing.T) {
	var calls atomic.Int64
	var cells []Cell
	for i := 0; i < 20; i++ {
		cells = append(cells, okCell(fmt.Sprintf("cell-%02d", i), &calls))
	}
	rep, err := Execute(context.Background(), cells, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK != 20 || rep.Failed != 0 || rep.Resumed != 0 || rep.Interrupted {
		t.Fatalf("report = %+v", rep)
	}
	if got := calls.Load(); got != 20 {
		t.Fatalf("work ran %d times, want 20", got)
	}
	for i, c := range rep.Cells {
		want := fmt.Sprintf("cell-%02d", i)
		if c == nil || c.Key != want || string(c.Result) != fmt.Sprintf("%q", want) {
			t.Fatalf("cells[%d] = %+v, want key %s", i, c, want)
		}
	}
}

// TestExecuteRejectsBadGrids: duplicate or empty keys fail before any work.
func TestExecuteRejectsBadGrids(t *testing.T) {
	var calls atomic.Int64
	dup := []Cell{okCell("a", &calls), okCell("a", &calls)}
	if _, err := Execute(context.Background(), dup, Options{}); err == nil {
		t.Fatal("duplicate keys accepted")
	}
	empty := []Cell{okCell("", &calls)}
	if _, err := Execute(context.Background(), empty, Options{}); err == nil {
		t.Fatal("empty key accepted")
	}
	if calls.Load() != 0 {
		t.Fatal("work ran despite invalid grid")
	}
}

// TestRetrySucceedsAfterFailures: a cell that fails twice then succeeds is
// retried with backoff and ends ok with Attempts == 3.
func TestRetrySucceedsAfterFailures(t *testing.T) {
	var calls atomic.Int64
	c := Cell{Key: "flaky", Work: func(ctx context.Context) (json.RawMessage, error) {
		if calls.Add(1) < 3 {
			return nil, errors.New("transient")
		}
		return payload("ok"), nil
	}}
	rep, err := Execute(context.Background(), []Cell{c}, Options{
		MaxAttempts: 5, BackoffBase: time.Millisecond, BackoffMax: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	got := rep.Cells[0]
	if got.Status != StatusOK || got.Attempts != 3 {
		t.Fatalf("fate = %+v, want ok after 3 attempts", got)
	}
}

// TestRetryExhaustion: a permanently failing cell is tried exactly
// MaxAttempts times, recorded as failed, and does not abort the grid.
func TestRetryExhaustion(t *testing.T) {
	var calls atomic.Int64
	bad := Cell{Key: "doomed", Work: func(ctx context.Context) (json.RawMessage, error) {
		calls.Add(1)
		return nil, errors.New("deterministic failure")
	}}
	rep, err := Execute(context.Background(), []Cell{bad, okCell("fine", nil)}, Options{
		Workers: 2, MaxAttempts: 3, BackoffBase: time.Millisecond, BackoffMax: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 3 {
		t.Fatalf("attempts = %d, want 3", calls.Load())
	}
	if rep.OK != 1 || rep.Failed != 1 {
		t.Fatalf("report = %+v", rep)
	}
	f := rep.Failures()
	if len(f) != 1 || f[0].Key != "doomed" || !strings.Contains(f[0].Err, "deterministic failure") {
		t.Fatalf("failures = %+v", f)
	}
}

// TestPanicIsolation: a panicking cell becomes a failed fate with the panic
// message and stack; sibling cells and the process survive.
func TestPanicIsolation(t *testing.T) {
	boom := Cell{Key: "boom", Work: func(ctx context.Context) (json.RawMessage, error) {
		panic("kaboom")
	}}
	rep, err := Execute(context.Background(), []Cell{boom, okCell("fine", nil)}, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	f := rep.Failures()
	if len(f) != 1 || !strings.Contains(f[0].Err, "kaboom") || !strings.Contains(f[0].Err, "run_test.go") {
		t.Fatalf("panic fate = %+v", f)
	}
	if rep.OK != 1 {
		t.Fatalf("sibling cell did not complete: %+v", rep)
	}
}

// TestCellTimeout: a cell that ignores its context is abandoned at the
// deadline and recorded as failed; one that honours ctx stops promptly.
func TestCellTimeout(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	hung := Cell{Key: "hung", Work: func(ctx context.Context) (json.RawMessage, error) {
		<-release // ignores ctx entirely
		return nil, nil
	}}
	polite := Cell{Key: "polite", Work: func(ctx context.Context) (json.RawMessage, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	}}
	start := time.Now()
	rep, err := Execute(context.Background(), []Cell{hung, polite}, Options{
		Workers: 2, CellTimeout: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("grid wedged for %s on a hung cell", elapsed)
	}
	if rep.Failed != 2 {
		t.Fatalf("report = %+v, want both cells failed", rep)
	}
	for _, f := range rep.Failures() {
		if f.Key == "hung" && !strings.Contains(f.Err, "timed out") {
			t.Fatalf("hung fate = %+v", f)
		}
	}
}

// TestJournalRoundTrip: a journal written by one supervisor is resumable by
// another — completed cells replay without rerunning, missing cells run.
func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "grid.jsonl")
	var firstCalls atomic.Int64
	first := []Cell{okCell("a", &firstCalls), okCell("b", &firstCalls)}

	j, err := OpenJournal(path, "test-grid v1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Execute(context.Background(), first, Options{Journal: j}); err != nil {
		t.Fatal(err)
	}
	j.Close()

	// Resume with a superset grid: a and b must replay, c must run.
	var secondCalls atomic.Int64
	second := []Cell{okCell("a", &secondCalls), okCell("b", &secondCalls), okCell("c", &secondCalls)}
	j2, err := ResumeJournal(path, "test-grid v1")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Execute(context.Background(), second, Options{Journal: j2})
	if err != nil {
		t.Fatal(err)
	}
	j2.Close()
	if secondCalls.Load() != 1 {
		t.Fatalf("resumed run executed %d cells, want 1", secondCalls.Load())
	}
	if rep.OK != 3 || rep.Resumed != 2 {
		t.Fatalf("report = %+v", rep)
	}
	if !rep.Cells[0].Resumed || !rep.Cells[1].Resumed || rep.Cells[2].Resumed {
		t.Fatalf("resumed flags wrong: %+v %+v %+v", rep.Cells[0], rep.Cells[1], rep.Cells[2])
	}
	if string(rep.Cells[0].Result) != `"a"` {
		t.Fatalf("replayed payload = %s", rep.Cells[0].Result)
	}

	// A failed fate in the journal must NOT be skipped on resume.
	j3, err := ResumeJournal(path, "test-grid v1")
	if err != nil {
		t.Fatal(err)
	}
	if err := j3.Record(Entry{Key: "d", Status: StatusFailed, Attempts: 2, Error: "boom"}); err != nil {
		t.Fatal(err)
	}
	j3.Close()
	j4, err := ResumeJournal(path, "test-grid v1")
	if err != nil {
		t.Fatal(err)
	}
	defer j4.Close()
	if _, ok := j4.Completed("d"); ok {
		t.Fatal("failed cell treated as completed")
	}
	if _, ok := j4.Completed("c"); !ok {
		t.Fatal("ok cell lost across resume")
	}
}

// TestResumeRejectsMismatch: wrong label, wrong file shape, future version
// and corruption in the middle all refuse to resume.
func TestResumeRejectsMismatch(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "grid.jsonl")
	j, err := OpenJournal(path, "grid-A")
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Record(Entry{Key: "a", Status: StatusOK, Attempts: 1}); err != nil {
		t.Fatal(err)
	}
	j.Close()

	if _, err := ResumeJournal(path, "grid-B"); !errors.Is(err, ErrBadJournal) {
		t.Fatalf("label mismatch err = %v", err)
	}

	notJournal := filepath.Join(dir, "not.jsonl")
	os.WriteFile(notJournal, []byte("{\"foo\": 1}\n"), 0o644)
	if _, err := ResumeJournal(notJournal, ""); !errors.Is(err, ErrBadJournal) {
		t.Fatalf("non-journal err = %v", err)
	}

	empty := filepath.Join(dir, "empty.jsonl")
	os.WriteFile(empty, nil, 0o644)
	if _, err := ResumeJournal(empty, ""); !errors.Is(err, ErrBadJournal) {
		t.Fatalf("empty journal err = %v", err)
	}

	future := filepath.Join(dir, "future.jsonl")
	os.WriteFile(future, []byte(`{"journal":"hotpotato-run","version":99,"label":"x"}`+"\n"), 0o644)
	if _, err := ResumeJournal(future, ""); !errors.Is(err, ErrBadJournal) {
		t.Fatalf("future version err = %v", err)
	}

	midCorrupt := filepath.Join(dir, "mid.jsonl")
	os.WriteFile(midCorrupt, []byte(
		`{"journal":"hotpotato-run","version":1,"label":"x"}`+"\n"+
			`{"key":"a","sta`+"\n"+ // torn line NOT at the end
			`{"key":"b","status":"ok","attempts":1}`+"\n"), 0o644)
	if _, err := ResumeJournal(midCorrupt, ""); !errors.Is(err, ErrBadJournal) {
		t.Fatalf("mid-file corruption err = %v", err)
	}
}

// TestResumeToleratesTornTail: a journal killed mid-write (truncated final
// line) resumes cleanly, keeps the intact entries, and appends correctly.
func TestResumeToleratesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "torn.jsonl")
	j, err := OpenJournal(path, "grid")
	if err != nil {
		t.Fatal(err)
	}
	j.Record(Entry{Key: "a", Status: StatusOK, Attempts: 1, Result: payload("a")})
	j.Record(Entry{Key: "b", Status: StatusOK, Attempts: 1, Result: payload("b")})
	j.Close()

	// Simulate a hard kill mid-write of a third entry.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"key":"c","status":"o`)
	f.Close()

	j2, err := ResumeJournal(path, "grid")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := j2.Completed("a"); !ok {
		t.Fatal("entry a lost")
	}
	if _, ok := j2.Completed("c"); ok {
		t.Fatal("torn entry c treated as completed")
	}
	if err := j2.Record(Entry{Key: "c", Status: StatusOK, Attempts: 1, Result: payload("c")}); err != nil {
		t.Fatal(err)
	}
	j2.Close()

	// The rewritten entry must parse on the next resume.
	j3, err := ResumeJournal(path, "grid")
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	if _, ok := j3.Completed("c"); !ok {
		t.Fatal("entry appended after torn tail did not survive")
	}
}

// TestGracefulInterrupt: cancelling mid-grid stops dispatching, finishes
// in-flight cells, journals them, and reports Interrupted; a second Execute
// against the journal completes only the remainder.
func TestGracefulInterrupt(t *testing.T) {
	path := filepath.Join(t.TempDir(), "grid.jsonl")
	j, err := OpenJournal(path, "grid")
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var once sync.Once
	var ran atomic.Int64
	var cells []Cell
	for i := 0; i < 10; i++ {
		key := fmt.Sprintf("cell-%d", i)
		cells = append(cells, Cell{Key: key, Work: func(ctx context.Context) (json.RawMessage, error) {
			ran.Add(1)
			once.Do(cancel) // interrupt arrives while this cell is in flight
			time.Sleep(20 * time.Millisecond)
			return payload(key), nil
		}})
	}
	rep, err := Execute(ctx, cells, Options{Workers: 2, Journal: j})
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
	if !rep.Interrupted {
		t.Fatal("report not marked interrupted")
	}
	j.Close()
	firstRan := ran.Load()
	if firstRan == 0 || firstRan == 10 {
		t.Fatalf("interrupt ran %d cells, want partial progress", firstRan)
	}
	// Every cell that ran must be in the journal (in-flight cells finished).
	if rep.OK != int(firstRan) {
		t.Fatalf("ok = %d but %d cells ran: in-flight work lost", rep.OK, firstRan)
	}

	j2, err := ResumeJournal(path, "grid")
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	var reran atomic.Int64
	for i := range cells {
		key := cells[i].Key
		cells[i].Work = func(ctx context.Context) (json.RawMessage, error) {
			reran.Add(1)
			return payload(key), nil
		}
	}
	rep2, err := Execute(context.Background(), cells, Options{Workers: 2, Journal: j2})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.OK != 10 {
		t.Fatalf("resumed report = %+v", rep2)
	}
	if got := reran.Load(); got != 10-firstRan {
		t.Fatalf("resume reran %d cells, want %d", got, 10-firstRan)
	}
}

// TestBackoffDeterministicJitter: same seed/key/attempt give the same
// spacing; different keys give different spacing (no thundering herd).
func TestBackoffDeterministicJitter(t *testing.T) {
	opts := Options{Seed: 7, BackoffBase: time.Second, BackoffMax: time.Minute}
	d := func(key string, attempt int) time.Duration {
		return backoffDelay(opts, key, attempt)
	}
	if d("a", 1) != d("a", 1) {
		t.Fatal("jitter not deterministic for identical inputs")
	}
	if d("a", 1) == d("b", 1) && d("a", 2) == d("b", 2) && d("a", 3) == d("b", 3) {
		t.Fatal("jitter identical across keys: herd not dispersed")
	}
	for _, key := range []string{"a", "b", "c"} {
		got := d(key, 1)
		if got < opts.BackoffBase/2 || got >= opts.BackoffBase*3/2 {
			t.Fatalf("jittered delay %s outside [0.5b, 1.5b)", got)
		}
	}
}

// TestExecuteWithoutJournal: journal-less operation is fully supported.
func TestExecuteWithoutJournal(t *testing.T) {
	rep, err := Execute(context.Background(), []Cell{okCell("solo", nil)}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK != 1 {
		t.Fatalf("report = %+v", rep)
	}
}
