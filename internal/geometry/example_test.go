package geometry_test

import (
	"fmt"

	"hotpotato/internal/geometry"
)

// A 3x3 square is the equality case of Claim 13: its perimeter 12 equals
// 2d * |V|^{(d-1)/d} = 4 * 3.
func ExampleVolume_CheckClaim13() {
	v, err := geometry.Box(3, 3)
	if err != nil {
		panic(err)
	}
	surface, bound, ok := v.CheckClaim13()
	fmt.Printf("surface=%d bound=%.0f holds=%v\n", surface, bound, ok)
	// Output:
	// surface=12 bound=12 holds=true
}

func ExampleVolume_ShearerEntropy() {
	// For a box the coordinates are independent, so Shearer's inequality
	// is tight: (d-1)H(X) = sum of the projected entropies.
	v, err := geometry.Box(2, 4)
	if err != nil {
		panic(err)
	}
	lhs, rhs := v.ShearerEntropy()
	fmt.Printf("lhs=%.0f rhs=%.0f\n", lhs, rhs)
	// Output:
	// lhs=3 rhs=3
}
