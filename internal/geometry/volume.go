// Package geometry implements the lattice-volume machinery behind the
// paper's isoperimetric inequality (Claim 13): volumes composed of
// d-dimensional unit cubes, their surface area, their (d-1)-dimensional
// projections, and the Shearer entropy inequality [CGFS] the claim's proof
// rests on. The checkers here let the experiments validate the chain
//
//	surface(V) >= 2 * sum |pi_I(V)|              (inequality (1))
//	|V|^{d-1}  <= prod |pi_I(V)|                 (inequality (5), via Shearer)
//	surface(V) >= 2d * |V|^{(d-1)/d}             (Claim 13)
//
// on arbitrary and random volumes.
package geometry

import (
	"fmt"
	"math"
	"math/rand"
	"slices"
)

// MaxDim is the largest supported dimension.
const MaxDim = 8

// Cell is a lattice point (the corner of a unit cube); coordinates beyond
// the volume's dimension must be zero.
type Cell [MaxDim]int16

// CellOf builds a Cell from coordinates.
func CellOf(coords ...int) Cell {
	var c Cell
	for i, x := range coords {
		c[i] = int16(x)
	}
	return c
}

// Volume is a finite set of d-dimensional unit cubes, identified by their
// lattice positions.
type Volume struct {
	dim   int
	cells map[Cell]struct{}
}

// NewVolume returns an empty volume of the given dimension.
func NewVolume(dim int) (*Volume, error) {
	if dim < 1 || dim > MaxDim {
		return nil, fmt.Errorf("geometry: dimension %d out of range [1, %d]", dim, MaxDim)
	}
	return &Volume{dim: dim, cells: make(map[Cell]struct{})}, nil
}

// MustNewVolume is NewVolume for static dimensions; it panics on error.
func MustNewVolume(dim int) *Volume {
	v, err := NewVolume(dim)
	if err != nil {
		panic(err)
	}
	return v
}

// Dim returns the dimension.
func (v *Volume) Dim() int { return v.dim }

// Size returns |V|, the number of unit cubes.
func (v *Volume) Size() int { return len(v.cells) }

// Add inserts a cell (idempotent).
func (v *Volume) Add(c Cell) { v.cells[c] = struct{}{} }

// AddCoords inserts the cell at the given coordinates.
func (v *Volume) AddCoords(coords ...int) { v.Add(CellOf(coords...)) }

// Has reports whether the cell is in the volume.
func (v *Volume) Has(c Cell) bool {
	_, ok := v.cells[c]
	return ok
}

// Cells returns all cells (iteration order unspecified).
func (v *Volume) Cells() []Cell {
	out := make([]Cell, 0, len(v.cells))
	for c := range v.cells {
		out = append(out, c)
	}
	return out
}

// Surface returns the surface area: the number of (d-1)-dimensional faces
// between a cube of the volume and the outside.
func (v *Volume) Surface() int {
	s := 0
	for c := range v.cells {
		for a := 0; a < v.dim; a++ {
			for _, delta := range [2]int16{1, -1} {
				nb := c
				nb[a] += delta
				if !v.Has(nb) {
					s++
				}
			}
		}
	}
	return s
}

// ProjectionSize returns |pi_I(V)| for I = all axes except `drop`: the
// number of distinct images of the cells when the `drop` coordinate is
// erased.
func (v *Volume) ProjectionSize(drop int) int {
	seen := make(map[Cell]struct{}, len(v.cells))
	for c := range v.cells {
		c[drop] = 0
		seen[c] = struct{}{}
	}
	return len(seen)
}

// ProjectionSizes returns |pi_I(V)| for every (d-1)-subset I, indexed by
// the dropped axis.
func (v *Volume) ProjectionSizes() []int {
	out := make([]int, v.dim)
	for a := 0; a < v.dim; a++ {
		out[a] = v.ProjectionSize(a)
	}
	return out
}

// IsoperimetricBound returns the Claim-13 lower bound 2d * size^{(d-1)/d}.
func IsoperimetricBound(dim, size int) float64 {
	if size == 0 {
		return 0
	}
	d := float64(dim)
	return 2 * d * math.Pow(float64(size), (d-1)/d)
}

// CheckClaim13 reports whether surface(V) >= 2d |V|^{(d-1)/d} (always true;
// exposed as a checkable predicate for the experiments), along with the two
// sides of the inequality.
func (v *Volume) CheckClaim13() (surface int, bound float64, ok bool) {
	surface = v.Surface()
	bound = IsoperimetricBound(v.dim, v.Size())
	return surface, bound, float64(surface)+1e-9 >= bound
}

// CheckProjectionSurface reports whether inequality (1) of the paper holds:
// surface(V) >= 2 * sum over (d-1)-subsets I of |pi_I(V)|.
func (v *Volume) CheckProjectionSurface() (surface, projSum int, ok bool) {
	surface = v.Surface()
	for a := 0; a < v.dim; a++ {
		projSum += v.ProjectionSize(a)
	}
	return surface, projSum, surface >= 2*projSum
}

// CheckLoomisWhitney reports whether inequality (5) holds:
// |V|^{d-1} <= prod over (d-1)-subsets I of |pi_I(V)| (the Loomis-Whitney
// inequality, derived in the paper from Shearer's entropy lemma).
func (v *Volume) CheckLoomisWhitney() (lhs, rhs float64, ok bool) {
	d := float64(v.dim)
	lhs = math.Pow(float64(v.Size()), d-1)
	rhs = 1
	for a := 0; a < v.dim; a++ {
		rhs *= float64(v.ProjectionSize(a))
	}
	return lhs, rhs, lhs <= rhs*(1+1e-9)
}

// ShearerEntropy returns both sides of the entropy inequality (4) used in
// the proof of Claim 13, for the uniform distribution over the volume:
// (d-1) * H(X) and sum over (d-1)-subsets I of H(X_I), in bits. The
// inequality lhs <= rhs always holds [CGFS].
func (v *Volume) ShearerEntropy() (lhs, rhs float64) {
	if v.Size() == 0 {
		return 0, 0
	}
	n := float64(v.Size())
	lhs = float64(v.dim-1) * math.Log2(n)
	for a := 0; a < v.dim; a++ {
		counts := make(map[Cell]int)
		for c := range v.cells {
			c[a] = 0
			counts[c]++
		}
		h := 0.0
		for _, cnt := range counts {
			p := float64(cnt) / n
			h -= p * math.Log2(p)
		}
		rhs += h
	}
	return lhs, rhs
}

// Box returns the axis-aligned box volume with the given side lengths.
func Box(sides ...int) (*Volume, error) {
	v, err := NewVolume(len(sides))
	if err != nil {
		return nil, err
	}
	for _, s := range sides {
		if s < 1 {
			return nil, fmt.Errorf("geometry: box side %d must be positive", s)
		}
	}
	var rec func(prefix []int)
	rec = func(prefix []int) {
		if len(prefix) == len(sides) {
			v.AddCoords(prefix...)
			return
		}
		for x := 0; x < sides[len(prefix)]; x++ {
			rec(append(prefix, x))
		}
	}
	rec(make([]int, 0, len(sides)))
	return v, nil
}

// RandomBlob grows a connected random volume of the given size by repeated
// boundary accretion, producing irregular shapes for property tests.
func RandomBlob(dim, size int, rng *rand.Rand) (*Volume, error) {
	v, err := NewVolume(dim)
	if err != nil {
		return nil, err
	}
	if size <= 0 {
		return v, nil
	}
	var origin Cell
	v.Add(origin)
	frontier := []Cell{origin}
	for v.Size() < size && len(frontier) > 0 {
		i := rng.Intn(len(frontier))
		c := frontier[i]
		a := rng.Intn(dim)
		delta := int16(1)
		if rng.Intn(2) == 0 {
			delta = -1
		}
		nb := c
		nb[a] += delta
		if !v.Has(nb) {
			v.Add(nb)
			frontier = append(frontier, nb)
		} else if rng.Intn(4) == 0 {
			// Occasionally retire a frontier cell to keep the list short.
			frontier[i] = frontier[len(frontier)-1]
			frontier = frontier[:len(frontier)-1]
		}
	}
	return v, nil
}

// CompactVolume returns a near-cubic connected volume of exactly `size`
// cells: a full cube plus one partially filled layer, the greedy
// low-surface shape. It approaches the Claim-13 equality case and is used
// to probe how tight the bound is between perfect cubes.
func CompactVolume(dim, size int) (*Volume, error) {
	v, err := NewVolume(dim)
	if err != nil {
		return nil, err
	}
	if size <= 0 {
		return v, nil
	}
	side := 1
	for pow(side+1, dim) <= size {
		side++
	}
	// Enumerate the (side+1)^dim box in shell order (by max coordinate):
	// the inner side^dim cube comes first, then its surface accretes.
	type cell struct {
		coords []int
		shell  int
	}
	var cells []cell
	coords := make([]int, dim)
	var collect func(a int)
	collect = func(a int) {
		if a < 0 {
			c := append([]int(nil), coords...)
			maxc := 0
			for _, x := range c {
				if x > maxc {
					maxc = x
				}
			}
			cells = append(cells, cell{coords: c, shell: maxc})
			return
		}
		for x := 0; x <= side; x++ {
			coords[a] = x
			collect(a - 1)
		}
	}
	collect(dim - 1)
	slices.SortStableFunc(cells, func(a, b cell) int { return a.shell - b.shell })
	for i := 0; i < size && i < len(cells); i++ {
		v.AddCoords(cells[i].coords...)
	}
	return v, nil
}

func pow(b, e int) int {
	r := 1
	for i := 0; i < e; i++ {
		r *= b
	}
	return r
}

// RandomBoxes returns the union of nboxes random axis-aligned boxes with
// sides in [1, maxSide] placed in [0, 4*maxSide)^dim, producing volumes
// with holes, concavities and disconnected components.
func RandomBoxes(dim, nboxes, maxSide int, rng *rand.Rand) (*Volume, error) {
	v, err := NewVolume(dim)
	if err != nil {
		return nil, err
	}
	span := 4 * maxSide
	coords := make([]int, dim)
	for b := 0; b < nboxes; b++ {
		var lo, hi [MaxDim]int
		for a := 0; a < dim; a++ {
			lo[a] = rng.Intn(span)
			hi[a] = lo[a] + 1 + rng.Intn(maxSide)
		}
		var rec func(a int)
		rec = func(a int) {
			if a == dim {
				v.AddCoords(coords[:dim]...)
				return
			}
			for x := lo[a]; x < hi[a]; x++ {
				coords[a] = x
				rec(a + 1)
			}
		}
		rec(0)
	}
	return v, nil
}
