package geometry

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewVolumeValidation(t *testing.T) {
	for _, d := range []int{0, -1, MaxDim + 1} {
		if _, err := NewVolume(d); err == nil {
			t.Errorf("NewVolume(%d) accepted", d)
		}
	}
	v, err := NewVolume(3)
	if err != nil || v.Dim() != 3 || v.Size() != 0 {
		t.Fatalf("NewVolume(3) = %v, %v", v, err)
	}
}

func TestMustNewVolumePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNewVolume(0) did not panic")
		}
	}()
	MustNewVolume(0)
}

func TestAddHasIdempotent(t *testing.T) {
	v := MustNewVolume(2)
	c := CellOf(3, 4)
	if v.Has(c) {
		t.Fatal("empty volume contains a cell")
	}
	v.Add(c)
	v.Add(c)
	v.AddCoords(3, 4)
	if v.Size() != 1 || !v.Has(c) {
		t.Fatalf("Size = %d after triple insert", v.Size())
	}
	if got := v.Cells(); len(got) != 1 || got[0] != c {
		t.Fatalf("Cells() = %v", got)
	}
}

func TestSingleCube(t *testing.T) {
	for d := 1; d <= 5; d++ {
		v := MustNewVolume(d)
		v.Add(Cell{})
		if got, want := v.Surface(), 2*d; got != want {
			t.Errorf("d=%d: Surface = %d, want %d", d, got, want)
		}
		surface, bound, ok := v.CheckClaim13()
		if !ok || surface != 2*d || math.Abs(bound-float64(2*d)) > 1e-9 {
			t.Errorf("d=%d: claim13 check (%d, %v, %v)", d, surface, bound, ok)
		}
	}
}

// TestBoxSurfaces: boxes have the classical surface formula and cubes are
// the equality case of Claim 13.
func TestBoxSurfaces(t *testing.T) {
	tests := []struct {
		sides []int
		want  int
	}{
		{[]int{5}, 2},
		{[]int{3, 4}, 14},    // perimeter 2*(3+4)
		{[]int{2, 3, 4}, 52}, // 2*(2*3+3*4+2*4)
		{[]int{4, 4}, 16},    // square: equality case
		{[]int{3, 3, 3}, 54}, // cube: equality case
	}
	for _, tt := range tests {
		v, err := Box(tt.sides...)
		if err != nil {
			t.Fatal(err)
		}
		if got := v.Surface(); got != tt.want {
			t.Errorf("Box(%v).Surface = %d, want %d", tt.sides, got, tt.want)
		}
		if _, _, ok := v.CheckClaim13(); !ok {
			t.Errorf("Box(%v) violates Claim 13", tt.sides)
		}
	}
	// Equality cases: cube of side s in d dims has surface exactly
	// 2d * s^{d-1} = 2d * |V|^{(d-1)/d}.
	for _, cfg := range []struct{ d, s int }{{2, 4}, {3, 3}, {4, 2}} {
		sides := make([]int, cfg.d)
		for i := range sides {
			sides[i] = cfg.s
		}
		v, err := Box(sides...)
		if err != nil {
			t.Fatal(err)
		}
		surface, bound, ok := v.CheckClaim13()
		if !ok || math.Abs(float64(surface)-bound) > 1e-6 {
			t.Errorf("cube d=%d s=%d: surface %d vs bound %v (should be tight)", cfg.d, cfg.s, surface, bound)
		}
	}
	if _, err := Box(0, 3); err == nil {
		t.Error("Box with zero side accepted")
	}
}

func TestProjections(t *testing.T) {
	// L-shaped 2-D volume: (0,0),(1,0),(0,1).
	v := MustNewVolume(2)
	v.AddCoords(0, 0)
	v.AddCoords(1, 0)
	v.AddCoords(0, 1)
	ps := v.ProjectionSizes()
	if ps[0] != 2 || ps[1] != 2 {
		t.Errorf("ProjectionSizes = %v, want [2 2]", ps)
	}
	if got := v.Surface(); got != 8 {
		t.Errorf("L surface = %d, want 8", got)
	}
	surface, projSum, ok := v.CheckProjectionSurface()
	if !ok || surface != 8 || projSum != 4 {
		t.Errorf("projection-surface check = (%d, %d, %v)", surface, projSum, ok)
	}
	lhs, rhs, ok := v.CheckLoomisWhitney()
	if !ok || lhs != 3 || rhs != 4 {
		t.Errorf("Loomis-Whitney = (%v, %v, %v)", lhs, rhs, ok)
	}
}

func TestShearerEntropyUniformBox(t *testing.T) {
	// For a box, X's coordinates are independent, so Shearer holds with
	// equality: (d-1) H(X) = sum_I H(X_I).
	v, err := Box(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	lhs, rhs := v.ShearerEntropy()
	if math.Abs(lhs-rhs) > 1e-9 {
		t.Errorf("box Shearer not tight: lhs=%v rhs=%v", lhs, rhs)
	}
	if math.Abs(lhs-math.Log2(32)) > 1e-9 {
		t.Errorf("lhs = %v, want log2(32)", lhs)
	}
}

func TestEmptyVolume(t *testing.T) {
	v := MustNewVolume(3)
	if v.Surface() != 0 {
		t.Error("empty volume has surface")
	}
	if IsoperimetricBound(3, 0) != 0 {
		t.Error("bound for empty volume not 0")
	}
	lhs, rhs := v.ShearerEntropy()
	if lhs != 0 || rhs != 0 {
		t.Errorf("empty Shearer = (%v, %v)", lhs, rhs)
	}
}

// TestClaim13RandomBlobs: Claim 13, inequality (1), Loomis-Whitney and
// Shearer hold on random connected volumes in dimensions 1-5.
func TestClaim13RandomBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for d := 1; d <= 5; d++ {
		for trial := 0; trial < 20; trial++ {
			size := 1 + rng.Intn(200)
			v, err := RandomBlob(d, size, rng)
			if err != nil {
				t.Fatal(err)
			}
			if v.Size() == 0 {
				t.Fatalf("d=%d: empty blob", d)
			}
			if _, _, ok := v.CheckClaim13(); !ok {
				t.Errorf("d=%d size=%d: Claim 13 violated", d, v.Size())
			}
			if _, _, ok := v.CheckProjectionSurface(); !ok {
				t.Errorf("d=%d size=%d: inequality (1) violated", d, v.Size())
			}
			if _, _, ok := v.CheckLoomisWhitney(); !ok {
				t.Errorf("d=%d size=%d: Loomis-Whitney violated", d, v.Size())
			}
			lhs, rhs := v.ShearerEntropy()
			if lhs > rhs+1e-9 {
				t.Errorf("d=%d size=%d: Shearer violated (%v > %v)", d, v.Size(), lhs, rhs)
			}
		}
	}
}

// TestClaim13RandomBoxes: the same inequalities on disconnected, holey
// unions of boxes.
func TestClaim13RandomBoxes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for d := 1; d <= 4; d++ {
		for trial := 0; trial < 15; trial++ {
			v, err := RandomBoxes(d, 1+rng.Intn(5), 3, rng)
			if err != nil {
				t.Fatal(err)
			}
			if _, _, ok := v.CheckClaim13(); !ok {
				t.Errorf("d=%d size=%d: Claim 13 violated", d, v.Size())
			}
			lhs, rhs := v.ShearerEntropy()
			if lhs > rhs+1e-9 {
				t.Errorf("d=%d: Shearer violated (%v > %v)", d, lhs, rhs)
			}
		}
	}
}

// TestQuickClaim13 drives random 3-D volumes through testing/quick.
func TestQuickClaim13(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		v, err := RandomBlob(3, int(sz%100)+1, rng)
		if err != nil {
			return false
		}
		_, _, ok := v.CheckClaim13()
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestSurfaceSubadditivity: merging volumes never increases total surface.
func TestSurfaceSubadditivity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		a, err := RandomBlob(3, 40, rng)
		if err != nil {
			t.Fatal(err)
		}
		b, err := RandomBoxes(3, 2, 3, rng)
		if err != nil {
			t.Fatal(err)
		}
		merged := MustNewVolume(3)
		for _, c := range a.Cells() {
			merged.Add(c)
		}
		for _, c := range b.Cells() {
			merged.Add(c)
		}
		if merged.Surface() > a.Surface()+b.Surface() {
			t.Errorf("surface superadditive: %d > %d + %d", merged.Surface(), a.Surface(), b.Surface())
		}
	}
}

func BenchmarkSurface(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	v, err := RandomBlob(3, 2000, rng)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = v.Surface()
	}
}

// TestCompactVolume: the greedy compact shape has size exactly as asked,
// satisfies Claim 13, and stays within a constant factor of the bound
// (surface/bound <= 2 for all tested sizes) — quantifying the bound's
// slack between perfect cubes.
func TestCompactVolume(t *testing.T) {
	for d := 1; d <= 4; d++ {
		for size := 1; size <= 200; size += 7 {
			v, err := CompactVolume(d, size)
			if err != nil {
				t.Fatal(err)
			}
			if v.Size() != size {
				t.Fatalf("d=%d: size %d, want %d", d, v.Size(), size)
			}
			surface, bound, ok := v.CheckClaim13()
			if !ok {
				t.Fatalf("d=%d size=%d: Claim 13 violated", d, size)
			}
			if bound > 0 && float64(surface) > 2*bound {
				t.Errorf("d=%d size=%d: compact surface %d more than 2x bound %.1f", d, size, surface, bound)
			}
		}
	}
	if v, err := CompactVolume(3, 0); err != nil || v.Size() != 0 {
		t.Errorf("empty compact volume: %v, %v", v, err)
	}
	if _, err := CompactVolume(0, 5); err == nil {
		t.Error("dim 0 accepted")
	}
	// Perfect cubes are exact.
	v, err := CompactVolume(3, 27)
	if err != nil {
		t.Fatal(err)
	}
	if got := v.Surface(); got != 54 {
		t.Errorf("27-cell compact surface = %d, want 54 (the cube)", got)
	}
}
