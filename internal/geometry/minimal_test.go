package geometry

import (
	"math"
	"testing"
)

// enumerateMinSurface computes the exact minimal surface over ALL
// connected 2-D volumes (fixed polyominoes) of the given size, by
// canonical-growth enumeration. Feasible for size <= 9 (thousands of
// shapes).
func enumerateMinSurface(t *testing.T, size int) int {
	t.Helper()
	type key [20]int16 // canonicalized coords, 2 per cell (up to 10 cells)
	seen := map[key]bool{}
	minSurface := math.MaxInt

	canon := func(cells []Cell) key {
		// Translate so min coords are 0, then sort (insertion, tiny n).
		var minX, minY int16 = 1 << 14, 1 << 14
		for _, c := range cells {
			if c[0] < minX {
				minX = c[0]
			}
			if c[1] < minY {
				minY = c[1]
			}
		}
		norm := make([]Cell, len(cells))
		for i, c := range cells {
			norm[i] = Cell{c[0] - minX, c[1] - minY}
		}
		for i := 1; i < len(norm); i++ {
			for j := i; j > 0 && (norm[j][0] < norm[j-1][0] ||
				(norm[j][0] == norm[j-1][0] && norm[j][1] < norm[j-1][1])); j-- {
				norm[j], norm[j-1] = norm[j-1], norm[j]
			}
		}
		var k key
		for i, c := range norm {
			k[2*i] = c[0]
			k[2*i+1] = c[1]
		}
		return k
	}

	var grow func(cells []Cell, set map[Cell]bool)
	grow = func(cells []Cell, set map[Cell]bool) {
		if len(cells) == size {
			k := canon(cells)
			if seen[k] {
				return
			}
			seen[k] = true
			v := MustNewVolume(2)
			for _, c := range cells {
				v.Add(c)
			}
			if s := v.Surface(); s < minSurface {
				minSurface = s
			}
			return
		}
		// Try adding every empty neighbor of every cell.
		tried := map[Cell]bool{}
		for _, c := range cells {
			for _, d := range [4][2]int16{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
				nb := Cell{c[0] + d[0], c[1] + d[1]}
				if set[nb] || tried[nb] {
					continue
				}
				tried[nb] = true
				set[nb] = true
				grow(append(cells, nb), set)
				delete(set, nb)
			}
		}
	}
	start := Cell{}
	grow([]Cell{start}, map[Cell]bool{start: true})
	return minSurface
}

// TestClaim13ExactTightness2D compares, for every polyomino size up to 9,
// the EXACT minimal surface with the Claim-13 bound 4*sqrt(n) and the
// known closed form 2*ceil(2*sqrt(n)) for minimal polyomino perimeter:
// the bound is correct and within rounding of optimal — the isoperimetric
// inequality used by the paper is essentially tight for every volume size,
// not only perfect squares.
func TestClaim13ExactTightness2D(t *testing.T) {
	maxSize := 8
	if testing.Short() {
		maxSize = 6
	}
	for size := 1; size <= maxSize; size++ {
		minS := enumerateMinSurface(t, size)
		bound := IsoperimetricBound(2, size)
		if float64(minS)+1e-9 < bound {
			t.Fatalf("size %d: minimal surface %d below Claim-13 bound %.2f", size, minS, bound)
		}
		closed := 2 * int(math.Ceil(2*math.Sqrt(float64(size))))
		if minS != closed {
			t.Errorf("size %d: minimal surface %d, closed form says %d", size, minS, closed)
		}
		// Tightness: the bound is within one rounding step (4 units, two
		// faces per axis) of the true optimum.
		if float64(minS) > bound+4 {
			t.Errorf("size %d: bound %.2f unexpectedly slack vs optimum %d", size, bound, minS)
		}
	}
}
