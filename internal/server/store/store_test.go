package store

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func openT(t *testing.T, path string) (*Store, *Recovery) {
	t.Helper()
	s, rec, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	return s, rec
}

// TestRoundTrip writes a full lifecycle and replays it.
func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.wal")
	s, rec := openT(t, path)
	if len(rec.Jobs) != 0 {
		t.Fatalf("fresh WAL recovered %d jobs", len(rec.Jobs))
	}
	spec := json.RawMessage(`{"side":4,"k":8}`)
	result := json.RawMessage(`{"Steps":7}`)
	for _, r := range []Record{
		{Job: "j000001", Op: OpAccepted, Tenant: "acme", Spec: spec},
		{Job: "j000002", Op: OpAccepted, Tenant: "zeta", Spec: spec},
		{Job: "j000001", Op: OpRunning, Attempt: 1},
		{Job: "j000001", Op: OpDone, Result: result},
		{Job: "j000002", Op: OpRunning, Attempt: 1},
	} {
		if err := s.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, rec2 := openT(t, path)
	defer s2.Close()
	if len(rec2.Jobs) != 2 {
		t.Fatalf("recovered %d jobs, want 2", len(rec2.Jobs))
	}
	j1, j2 := rec2.Job("j000001"), rec2.Job("j000002")
	if j1 == nil || j1.Op != OpDone || j1.Pending() || string(j1.Result) != string(result) {
		t.Errorf("j000001 folded to %+v, want done with result", j1)
	}
	if j1.Tenant != "acme" || string(j1.Spec) != string(spec) {
		t.Errorf("j000001 lost tenant/spec: %+v", j1)
	}
	if j2 == nil || j2.Op != OpRunning || !j2.Pending() || j2.Starts != 1 {
		t.Errorf("j000002 folded to %+v, want pending with 1 start", j2)
	}
	if got := rec2.Pending(); len(got) != 1 || got[0].ID != "j000002" {
		t.Errorf("Pending() = %v, want [j000002]", got)
	}

	// Appending after reopen continues the sequence.
	if err := s2.Append(Record{Job: "j000002", Op: OpDone, Result: result}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	recs, _, err := DecodeAll(data)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].Seq <= recs[i-1].Seq {
			t.Fatalf("sequence not increasing at %d: %+v", i, recs)
		}
	}
}

// TestTornTailRepair truncates the file mid-line at several cut points and
// expects Open to chop the tail and keep every whole record.
func TestTornTailRepair(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.wal")
	s, _ := openT(t, base)
	for i, op := range []Op{OpAccepted, OpRunning, OpDone} {
		if err := s.Append(Record{Job: "j000001", Op: op, Attempt: i}); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	whole, err := os.ReadFile(base)
	if err != nil {
		t.Fatal(err)
	}

	// prevNL is where the final record's line begins; cuts land inside the
	// CRC field, inside the payload, and on the missing final newline.
	prevNL := strings.LastIndexByte(string(whole[:len(whole)-1]), '\n') + 1
	for _, cut := range []int{prevNL + 1, prevNL + 9, prevNL + 15, len(whole) - 1} {
		path := filepath.Join(dir, "torn.wal")
		if err := os.WriteFile(path, whole[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		s2, rec := openT(t, path)
		j := rec.Job("j000001")
		if j == nil {
			t.Fatalf("cut at %d lost the job entirely", cut)
		}
		// Whatever survived must be a prefix of the real history; the torn
		// record (done) is allowed to be missing, never half-applied.
		if j.Op == OpDone && cut < len(whole) {
			t.Fatalf("cut at %d kept the torn terminal record", cut)
		}
		// The repaired file must accept appends and reopen cleanly.
		if err := s2.Append(Record{Job: "j000001", Op: OpFailed, Error: "x"}); err != nil {
			t.Fatalf("cut at %d: append after repair: %v", cut, err)
		}
		s2.Close()
		s3, rec3 := openT(t, path)
		s3.Close()
		if got := rec3.Job("j000001").Op; got != OpFailed {
			t.Fatalf("cut at %d: reopen folded to %q, want failed", cut, got)
		}
		os.Remove(path)
	}
}

// TestCorruptionMidFileRefuses flips a byte in a non-final record.
func TestCorruptionMidFileRefuses(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.wal")
	s, _ := openT(t, path)
	for _, op := range []Op{OpAccepted, OpRunning, OpDone} {
		if err := s.Append(Record{Job: "j000001", Op: op}); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(path); !errors.Is(err, ErrBadWAL) {
		t.Fatalf("mid-file corruption opened with err = %v, want ErrBadWAL", err)
	}
}

// TestHeaderValidation rejects non-WAL files and future versions.
func TestHeaderValidation(t *testing.T) {
	dir := t.TempDir()
	for name, content := range map[string]string{
		"garbage":   "not a wal at all\n",
		"wrongtype": string(encodeLine([]byte(`{"wal":"something-else","version":1}`))),
		"future":    string(encodeLine([]byte(`{"wal":"hotpotatod-jobs","version":99}`))),
	} {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, err := Open(path); !errors.Is(err, ErrBadWAL) {
			t.Errorf("%s: err = %v, want ErrBadWAL", name, err)
		}
	}
}

// TestAppendAfterClose is the crash-simulation contract the chaos harness
// relies on: a closed store loses appends loudly, never silently.
func TestAppendAfterClose(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.wal")
	s, _ := openT(t, path)
	s.Close()
	if err := s.Append(Record{Job: "j1", Op: OpAccepted}); err == nil {
		t.Fatal("append after close succeeded")
	}
	if err := s.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

// TestQuarantineEvidence folds repeated crash-interrupted starts.
func TestQuarantineEvidence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.wal")
	s, _ := openT(t, path)
	s.Append(Record{Job: "j000001", Op: OpAccepted}) //nolint:errcheck
	for i := 1; i <= 3; i++ {
		s.Append(Record{Job: "j000001", Op: OpRunning, Attempt: i}) //nolint:errcheck
	}
	s.Close()
	_, rec := openT(t, path)
	if j := rec.Job("j000001"); j.Starts != 3 || !j.Pending() {
		t.Fatalf("folded %+v, want 3 starts pending", j)
	}
}
