package store

import (
	"bytes"
	"encoding/json"
	"testing"
)

// validWAL builds a small well-formed WAL for the seed corpus.
func validWAL() []byte {
	var buf bytes.Buffer
	buf.Write(encodeLine([]byte(`{"wal":"hotpotatod-jobs","version":1}`)))
	for i, r := range []Record{
		{Job: "j000001", Op: OpAccepted, Tenant: "t", Spec: json.RawMessage(`{"k":8}`)},
		{Job: "j000001", Op: OpRunning, Attempt: 1},
		{Job: "j000001", Op: OpDone, Result: json.RawMessage(`{"Steps":3}`)},
	} {
		r.Seq = int64(i + 1)
		r.UnixMS = 1700000000000
		payload, _ := json.Marshal(r)
		buf.Write(encodeLine(payload))
	}
	return buf.Bytes()
}

// FuzzWAL feeds arbitrary bytes to the WAL decoder: it must never panic,
// and whenever it accepts records they must obey the decoder's contract —
// clean offset within the input, strictly increasing sequence numbers, and
// a re-encode of the accepted prefix must decode to the same records.
func FuzzWAL(f *testing.F) {
	whole := validWAL()
	f.Add(whole)
	f.Add(whole[:len(whole)-1])  // torn newline
	f.Add(whole[:len(whole)-7])  // torn payload
	f.Add([]byte{})              // empty
	f.Add([]byte("00000000 \n")) // framed empty payload
	corrupt := bytes.Clone(whole)
	corrupt[len(corrupt)/2] ^= 0x20
	f.Add(corrupt)
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, clean, err := DecodeAll(data)
		if err != nil {
			return // rejected: fine, as long as it didn't panic
		}
		if clean < 0 || clean > int64(len(data)) {
			t.Fatalf("clean offset %d outside input of %d bytes", clean, len(data))
		}
		last := int64(0)
		for _, r := range recs {
			if r.Seq <= last {
				t.Fatalf("accepted non-increasing seq %d after %d", r.Seq, last)
			}
			last = r.Seq
			if r.Job == "" || r.Op == "" {
				t.Fatalf("accepted record without job/op: %+v", r)
			}
		}
		// Round-trip: re-encoding what was accepted must decode identically.
		var buf bytes.Buffer
		buf.Write(encodeLine([]byte(`{"wal":"hotpotatod-jobs","version":1}`)))
		for _, r := range recs {
			payload, err := json.Marshal(r)
			if err != nil {
				t.Fatalf("re-marshal: %v", err)
			}
			buf.Write(encodeLine(payload))
		}
		recs2, clean2, err := DecodeAll(buf.Bytes())
		if err != nil {
			t.Fatalf("re-encoded WAL rejected: %v", err)
		}
		if clean2 != int64(buf.Len()) {
			t.Fatalf("re-encoded WAL torn at %d of %d", clean2, buf.Len())
		}
		if len(recs2) != len(recs) {
			t.Fatalf("round trip kept %d of %d records", len(recs2), len(recs))
		}
		for i := range recs {
			a, _ := json.Marshal(recs[i])
			b, _ := json.Marshal(recs2[i])
			if !bytes.Equal(a, b) {
				t.Fatalf("record %d changed in round trip:\n%s\n%s", i, a, b)
			}
		}
		// Folding must also be total (no panics) on whatever was accepted.
		fold(recs)
	})
}
