// Package store is hotpotatod's durable job store: an fsynced, append-only
// write-ahead log of job lifecycle transitions. Every accepted job writes an
// "accepted" record before the client sees 202, every later transition
// (running, done, failed, checkpointed, quarantined) appends another record,
// and each append is flushed and fsynced before it returns — so the set of
// accepted jobs and their fates survives kill -9 at any instant.
//
// On restart, Open replays the log and folds it into one JobRecord per job:
// jobs whose last record is terminal are history, jobs stuck at accepted or
// running are the crash's survivors and must be re-enqueued (resuming from
// their last checkpoint if one exists — the checkpoint files themselves are
// internal/checkpoint's business, the WAL only records lifecycle).
//
// The line format is hostile-input-tolerant by construction: each line is
// an 8-hex-digit CRC-32 (IEEE) of the JSON payload, one space, the payload.
// A torn final line — the signature of a crash mid-write — is detected by
// its CRC or truncated JSON and chopped off on Open, exactly like
// internal/run's journal; a corrupt line *followed by more records* is real
// corruption and refuses to load. DecodeAll never panics on arbitrary
// bytes (see FuzzWAL).
package store

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"sync"
	"time"
)

// Version is the WAL schema version written into the header line.
const Version = 1

// walName identifies the file type in the header line.
const walName = "hotpotatod-jobs"

// ErrBadWAL is returned when a WAL file cannot be used: wrong header, a
// version from a future build, or corruption before the final line.
var ErrBadWAL = errors.New("store: not a usable job WAL")

// Op is one lifecycle transition type.
type Op string

// The job lifecycle: accepted -> running (one per attempt or per crash
// re-dispatch) -> exactly one terminal op.
const (
	// OpAccepted records admission; it carries the spec and tenant.
	OpAccepted Op = "accepted"
	// OpRunning records the start of one execution attempt.
	OpRunning Op = "running"
	// OpDone, OpFailed, OpCheckpointed and OpQuarantined are terminal.
	OpDone         Op = "done"
	OpFailed       Op = "failed"
	OpCheckpointed Op = "checkpointed"
	OpQuarantined  Op = "quarantined"
)

// Terminal reports whether the op ends a job's lifecycle.
func (o Op) Terminal() bool {
	return o == OpDone || o == OpFailed || o == OpCheckpointed || o == OpQuarantined
}

// header is the payload of the first WAL line.
type header struct {
	WAL     string `json:"wal"`
	Version int    `json:"version"`
}

// Record is one WAL line: a lifecycle transition of one job. The spec and
// result payloads are opaque JSON — the store neither interprets nor
// validates them, so the WAL schema survives job-spec evolution.
type Record struct {
	// Seq is the append sequence number, strictly increasing within a file.
	// Append assigns it; a caller-set value is overwritten.
	Seq int64 `json:"seq"`
	// Job is the job ID the transition belongs to.
	Job string `json:"job"`
	// Op is the transition type.
	Op Op `json:"op"`
	// Tenant is the admitting tenant (accepted records).
	Tenant string `json:"tenant,omitempty"`
	// Spec is the job spec as submitted (accepted records).
	Spec json.RawMessage `json:"spec,omitempty"`
	// Attempt is the 1-based attempt number (running records).
	Attempt int `json:"attempt,omitempty"`
	// Checkpoint is the saved state path (checkpointed records).
	Checkpoint string `json:"checkpoint,omitempty"`
	// Result is the run summary (done and checkpointed records).
	Result json.RawMessage `json:"result,omitempty"`
	// FinalHash is the engine-state fingerprint at natural completion (done
	// records) — the value the chaos harness compares for bit-identity, so
	// it must survive restarts alongside the result.
	FinalHash uint64 `json:"final_hash,omitempty"`
	// Error is the failure message (failed and quarantined records).
	Error string `json:"error,omitempty"`
	// UnixMS is the transition's wall-clock time in Unix milliseconds.
	UnixMS int64 `json:"ts_ms,omitempty"`
}

// JobRecord is the folded recovery state of one job after replay.
type JobRecord struct {
	// ID, Tenant and Spec come from the accepted record.
	ID     string
	Tenant string
	Spec   json.RawMessage
	// Op is the job's last recorded transition; Pending() derives from it.
	Op Op
	// Starts counts running records — every execution the job ever began,
	// across attempts and daemon lifetimes. A high count with no terminal
	// record is the signature of a poison job that keeps killing its host.
	Starts int
	// Checkpoint, Result, FinalHash and Error are the latest recorded values.
	Checkpoint string
	Result     json.RawMessage
	FinalHash  uint64
	Error      string
}

// Pending reports whether the job was accepted but never reached a terminal
// state — the jobs a recovering server must re-enqueue.
func (j *JobRecord) Pending() bool { return !j.Op.Terminal() }

// Recovery is the outcome of replaying a WAL.
type Recovery struct {
	// Jobs holds one folded record per job, in acceptance order. Running or
	// checkpoint records for jobs with no accepted record are dropped (they
	// can only arise from a WAL truncated at the head, which Open rejects,
	// or hand-edited files).
	Jobs []*JobRecord
	// Truncated is the number of bytes of torn tail chopped off on Open.
	Truncated int64
}

// Pending returns the recovered jobs that still need execution.
func (r *Recovery) Pending() []*JobRecord {
	var out []*JobRecord
	for _, j := range r.Jobs {
		if j.Pending() {
			out = append(out, j)
		}
	}
	return out
}

// Job returns the folded record for id, or nil.
func (r *Recovery) Job(id string) *JobRecord {
	for _, j := range r.Jobs {
		if j.ID == id {
			return j
		}
	}
	return nil
}

// Store is an open WAL. Append is safe for concurrent use.
type Store struct {
	mu     sync.Mutex
	f      *os.File
	seq    int64
	closed bool
}

// encodeLine frames one payload: crc32 in fixed-width hex, space, payload.
func encodeLine(payload []byte) []byte {
	out := make([]byte, 0, len(payload)+10)
	out = fmt.Appendf(out, "%08x ", crc32.ChecksumIEEE(payload))
	out = append(out, payload...)
	return append(out, '\n')
}

// decodeLine verifies one line's CRC frame and returns the payload.
func decodeLine(line []byte) ([]byte, error) {
	if len(line) < 10 || line[8] != ' ' {
		return nil, fmt.Errorf("short or unframed line")
	}
	var want uint32
	if _, err := fmt.Sscanf(string(line[:8]), "%08x", &want); err != nil {
		return nil, fmt.Errorf("bad crc field: %w", err)
	}
	payload := line[9:]
	if got := crc32.ChecksumIEEE(payload); got != want {
		return nil, fmt.Errorf("crc mismatch: line says %08x, payload is %08x", want, got)
	}
	return payload, nil
}

// DecodeAll parses WAL bytes into records. It tolerates exactly one broken
// region: a torn tail, i.e. a final line that is incomplete, fails its CRC,
// or is unparseable — clean is the byte offset where that tail begins (==
// len(data) when the file is whole). Corruption anywhere else returns an
// error wrapping ErrBadWAL. It never panics, whatever the input (FuzzWAL).
func DecodeAll(data []byte) (recs []Record, clean int64, err error) {
	var offset int64
	lineNo := 0
	lastSeq := int64(0)
	for len(data) > 0 {
		lineNo++
		lineStart := offset
		nl := bytes.IndexByte(data, '\n')
		var line []byte
		complete := nl >= 0
		if complete {
			line = data[:nl]
			data = data[nl+1:]
			offset += int64(nl) + 1
		} else {
			line = data
			data = nil
			offset += int64(len(line))
		}
		payload, lineErr := decodeLine(line)
		var rec Record
		if lineErr == nil && !complete {
			// A line without its newline can pass the CRC check only if the
			// crash landed exactly between payload and '\n'; the record is
			// whole, but the file still needs its tail trimmed to stay
			// appendable, so treat it as torn anyway.
			lineErr = fmt.Errorf("unterminated final line")
		}
		if lineErr == nil {
			if lineNo == 1 {
				var h header
				if json.Unmarshal(payload, &h) != nil || h.WAL != walName {
					return nil, 0, fmt.Errorf("%w: missing or wrong header", ErrBadWAL)
				}
				if h.Version > Version {
					return nil, 0, fmt.Errorf("%w: version %d, this build reads %d", ErrBadWAL, h.Version, Version)
				}
				continue
			}
			if uerr := json.Unmarshal(payload, &rec); uerr != nil || rec.Job == "" || rec.Op == "" {
				lineErr = fmt.Errorf("bad record json")
			} else if rec.Seq <= lastSeq {
				lineErr = fmt.Errorf("sequence went backwards (%d after %d)", rec.Seq, lastSeq)
			}
		}
		if lineErr != nil {
			if lineNo == 1 {
				return nil, 0, fmt.Errorf("%w: bad header line: %v", ErrBadWAL, lineErr)
			}
			if len(data) > 0 {
				return nil, 0, fmt.Errorf("%w: corrupt line %d (%v) followed by more records", ErrBadWAL, lineNo, lineErr)
			}
			return recs, lineStart, nil // torn tail: tolerated
		}
		lastSeq = rec.Seq
		recs = append(recs, rec)
	}
	if lineNo == 0 {
		return nil, 0, fmt.Errorf("%w: empty file", ErrBadWAL)
	}
	return recs, offset, nil
}

// fold reduces a record stream to per-job recovery state.
func fold(recs []Record) *Recovery {
	rec := &Recovery{}
	byID := make(map[string]*JobRecord)
	for _, r := range recs {
		j := byID[r.Job]
		if j == nil {
			if r.Op != OpAccepted {
				continue // transition for a job this WAL never accepted
			}
			j = &JobRecord{ID: r.Job, Tenant: r.Tenant, Spec: r.Spec}
			byID[r.Job] = j
			rec.Jobs = append(rec.Jobs, j)
		}
		j.Op = r.Op
		switch r.Op {
		case OpRunning:
			j.Starts++
		case OpCheckpointed:
			j.Checkpoint = r.Checkpoint
			if r.Result != nil {
				j.Result = r.Result
			}
		case OpDone:
			j.Result = r.Result
			j.FinalHash = r.FinalHash
		case OpFailed, OpQuarantined:
			j.Error = r.Error
		}
	}
	return rec
}

// Open opens (or creates) the WAL at path and replays it. A torn final
// line is truncated away; any other corruption fails with ErrBadWAL. The
// returned Recovery reflects every job the file records.
func Open(path string) (*Store, *Recovery, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("store: %w", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{f: f}
	if len(data) == 0 { // fresh file: write the header
		hdr, err := json.Marshal(header{WAL: walName, Version: Version})
		if err != nil {
			f.Close()
			return nil, nil, err
		}
		if err := s.writeLine(hdr); err != nil {
			f.Close()
			return nil, nil, err
		}
		return s, &Recovery{}, nil
	}
	recs, clean, err := DecodeAll(data)
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	if clean < int64(len(data)) {
		if err := f.Truncate(clean); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("store: repairing torn tail of %s: %w", path, err)
		}
	}
	if _, err := f.Seek(clean, 0); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("store: %w", err)
	}
	rec := fold(recs)
	rec.Truncated = int64(len(data)) - clean
	if n := len(recs); n > 0 {
		s.seq = recs[n-1].Seq
	}
	return s, rec, nil
}

// Append stamps the record (sequence number, timestamp), writes it as one
// framed line, and forces it to stable storage before returning. A nil
// error means the transition survives any subsequent crash.
func (s *Store) Append(r Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("store: appending to a closed WAL")
	}
	s.seq++
	r.Seq = s.seq
	if r.UnixMS == 0 {
		r.UnixMS = time.Now().UnixMilli()
	}
	payload, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return s.writeLine(payload)
}

// writeLine appends one framed line and fsyncs. Callers hold s.mu (or have
// exclusive access during Open).
func (s *Store) writeLine(payload []byte) error {
	if _, err := s.f.Write(encodeLine(payload)); err != nil {
		return fmt.Errorf("store: wal write: %w", err)
	}
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("store: wal sync: %w", err)
	}
	return nil
}

// Close releases the WAL file. Appends after Close fail — which is exactly
// the behavior the chaos harness leans on to simulate a crash: close the
// WAL, and everything the server tries to record afterwards is lost, like
// the page cache of a kill -9'd process.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	return s.f.Close()
}
