package server

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"
)

// longJobSpec is a job that runs for many seconds unless stopped: the
// per-step delay turns a sub-second batch run into an observable one.
const longJobSpec = `{"side": 6, "k": 24, "seed": 9, "progress_every": 1, "step_delay": "5ms", "max_steps": 100000}`

// drainQuiet drains a server with a generous bound, failing the test on
// error — for tests where the drain itself is not the subject.
func drainQuiet(t *testing.T, s *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

// waitRunning polls until the job is executing and has made progress.
func waitRunning(t *testing.T, ts *httptest.Server, id string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		st := getStatus(t, ts, id)
		if st.State == JobRunning && st.Progress != nil && st.Progress.Time > 0 {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never started making progress", id)
}

// TestDrainCheckpointsRunningJob is the core graceful-shutdown scenario:
// a long job is interrupted by Drain, its state lands in a checkpoint
// file, and resubmitting with resume_from finishes the routing problem.
func TestDrainCheckpointsRunningJob(t *testing.T) {
	dir := t.TempDir()
	s, ts := newTestServer(t, Config{Workers: 1, CheckpointDir: dir, DrainGrace: 30 * time.Millisecond})

	_, st := postJob(t, ts, longJobSpec)
	if st.ID == "" {
		t.Fatal("job not accepted")
	}
	waitRunning(t, ts, st.ID)

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}

	final := getStatus(t, ts, st.ID)
	if final.State != JobCheckpointed {
		t.Fatalf("drained job state = %q (err %q), want checkpointed", final.State, final.Error)
	}
	if final.Checkpoint == "" {
		t.Fatal("checkpointed job has no checkpoint path")
	}
	if _, err := os.Stat(final.Checkpoint); err != nil {
		t.Fatalf("checkpoint file: %v", err)
	}
	if final.Progress == nil || final.Progress.Time == 0 {
		t.Fatalf("checkpointed with no recorded progress: %+v", final.Progress)
	}

	// The stream of a checkpointed job must still end with a summary.
	events := readStream(t, ts, st.ID)
	if len(events) == 0 || events[len(events)-1].Type != "summary" {
		t.Fatalf("drained job's stream did not close with a summary")
	}

	// Resume on a fresh server: same problem, no step delay, run to the end.
	s2, ts2 := newTestServer(t, Config{Workers: 1})
	resume := fmt.Sprintf(`{"side": 6, "k": 24, "seed": 9, "max_steps": 100000, "resume_from": %q}`, final.Checkpoint)
	_, st2 := postJob(t, ts2, resume)
	if st2.ID == "" {
		t.Fatal("resume job not accepted")
	}
	done := waitTerminal(t, ts2, st2.ID)
	if done.State != JobDone {
		t.Fatalf("resumed job finished %q (err %q), want done", done.State, done.Error)
	}
	if done.Result == nil || done.Result.Delivered != done.Result.Total {
		t.Fatalf("resumed result %+v, want all delivered", done.Result)
	}
	// The resumed run continues the clock, it does not restart it.
	if done.Result.Steps <= final.Progress.Time {
		t.Errorf("resumed run's final step %d not beyond checkpoint step %d", done.Result.Steps, final.Progress.Time)
	}
	drainQuiet(t, s2)
}

// TestDrainLosesNoAcceptedJob submits a batch (some running, some queued),
// drains, and checks every accepted job reached a terminal state.
func TestDrainLosesNoAcceptedJob(t *testing.T) {
	dir := t.TempDir()
	s, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 8, CheckpointDir: dir, DrainGrace: 30 * time.Millisecond})

	var ids []string
	for i := 0; i < 6; i++ {
		resp, st := postJob(t, ts, longJobSpec)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("POST %d = %d", i, resp.StatusCode)
		}
		ids = append(ids, st.ID)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}

	for _, id := range ids {
		st := getStatus(t, ts, id)
		if !st.State.Terminal() {
			t.Errorf("job %s left in state %q after drain", id, st.State)
		}
		if st.State == JobFailed {
			t.Errorf("job %s failed during drain: %s", id, st.Error)
		}
		if st.State == JobCheckpointed {
			if _, err := os.Stat(st.Checkpoint); err != nil {
				t.Errorf("job %s checkpoint missing: %v", id, err)
			}
		}
	}
}

// TestDrainStopsAdmission checks POST answers 503 once draining.
func TestDrainStopsAdmission(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	drainQuiet(t, s)
	resp, _ := postJob(t, ts, `{"side": 4, "k": 4}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("POST while draining = %d, want 503", resp.StatusCode)
	}
	if _, err := s.Submit(JobSpec{}); err == nil {
		t.Fatal("Submit while draining did not error")
	}
}

// TestDrainWithoutCheckpointDir: with nowhere to save state, an
// interrupted job is reported failed, not silently dropped.
func TestDrainWithoutCheckpointDir(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, DrainGrace: 30 * time.Millisecond})
	_, st := postJob(t, ts, longJobSpec)
	waitRunning(t, ts, st.ID)
	drainQuiet(t, s)
	final := getStatus(t, ts, st.ID)
	if final.State != JobFailed {
		t.Fatalf("state = %q, want failed (no checkpoint dir)", final.State)
	}
	if !strings.Contains(final.Error, "no checkpoint dir") {
		t.Errorf("error %q does not explain the missing checkpoint dir", final.Error)
	}
}

// TestDrainTwiceErrors guards against double shutdown paths.
func TestDrainTwiceErrors(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	drainQuiet(t, s)
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := s.Drain(ctx); err == nil {
		t.Fatal("second Drain did not error")
	}
}

// TestJobTimeoutCheckpoints: a job over its wall-time budget checkpoints
// (when a dir is configured) instead of losing its work.
func TestJobTimeoutCheckpoints(t *testing.T) {
	dir := t.TempDir()
	s, ts := newTestServer(t, Config{
		Workers:       1,
		CheckpointDir: dir,
		JobTimeout:    100 * time.Millisecond,
	})
	// 20ms per step caps the run at ~5 steps before the budget, far short
	// of what 48 packets on an 8x8 mesh need.
	_, st := postJob(t, ts, `{"side": 8, "k": 48, "seed": 9, "progress_every": 1, "step_delay": "20ms", "max_steps": 100000}`)
	final := waitTerminal(t, ts, st.ID)
	if final.State != JobCheckpointed {
		t.Fatalf("timed-out job state = %q (err %q), want checkpointed", final.State, final.Error)
	}
	if _, err := os.Stat(final.Checkpoint); err != nil {
		t.Fatalf("checkpoint file: %v", err)
	}
	drainQuiet(t, s)
}
