package server

import (
	"math"
	"sync"
	"time"
)

// tenantLimiter is per-tenant token-bucket admission: each tenant owns a
// bucket refilled at rate tokens/second up to burst, and every accepted job
// spends one token. A tenant that bursts past its quota is throttled with
// the exact wait until its next token — the Retry-After the API returns —
// while other tenants' buckets are untouched, so one bursty client cannot
// starve the rest (the worst-case-arrival fairness motivation of
// Even–Medina's bounded-buffer adversary, applied at the serving layer).
type tenantLimiter struct {
	mu      sync.Mutex
	rate    float64 // tokens per second; <= 0 disables limiting
	burst   float64
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

func newTenantLimiter(rate float64, burst int) *tenantLimiter {
	if burst < 1 {
		burst = 1
	}
	return &tenantLimiter{rate: rate, burst: float64(burst), buckets: make(map[string]*bucket)}
}

// take spends one token from tenant's bucket. When the bucket is empty it
// returns false and the wait until one token will have accrued.
func (l *tenantLimiter) take(tenant string, now time.Time) (ok bool, retryAfter time.Duration) {
	if l == nil || l.rate <= 0 {
		return true, 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	b := l.buckets[tenant]
	if b == nil {
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[tenant] = b
	}
	b.tokens = math.Min(l.burst, b.tokens+l.rate*now.Sub(b.last).Seconds())
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	return false, time.Duration((1 - b.tokens) / l.rate * float64(time.Second))
}
