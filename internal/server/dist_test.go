package server

import (
	"fmt"
	"net/http"
	"os"
	"strings"
	"testing"
	"time"
)

// TestDistributedJobLifecycle runs the same routing problem as a distributed
// job (coordinator plus loopback worker processes), as an in-process sharded
// job, and as a workers-2 job, and demands identical final-state
// fingerprints — the bit-identity contract of internal/dshard observed end
// to end through the HTTP API.
func TestDistributedJobLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	const problem = `"side": 8, "seed": 3, "policy": "random", "workload": "full-load", "progress_every": 2`
	resp, dist := postJob(t, ts, `{`+problem+`, "shards": "2x2", "dist_workers": 2}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST distributed = %d, want 202", resp.StatusCode)
	}
	_, sharded := postJob(t, ts, `{`+problem+`, "shards": "2x2"}`)
	_, plain := postJob(t, ts, `{`+problem+`, "workers": 2}`)

	distDone := waitTerminal(t, ts, dist.ID)
	shardedDone := waitTerminal(t, ts, sharded.ID)
	plainDone := waitTerminal(t, ts, plain.ID)
	if distDone.State != JobDone {
		t.Fatalf("distributed job finished %q (err %q), want done", distDone.State, distDone.Error)
	}
	if distDone.Result == nil || distDone.Result.Delivered != distDone.Result.Total {
		t.Fatalf("distributed result %+v, want all delivered", distDone.Result)
	}
	if distDone.FinalHash == "" || distDone.FinalHash != shardedDone.FinalHash {
		t.Fatalf("final hash: distributed %q, sharded %q — distributed runs must be bit-identical",
			distDone.FinalHash, shardedDone.FinalHash)
	}
	if distDone.FinalHash != plainDone.FinalHash {
		t.Fatalf("final hash: distributed %q, workers-2 %q", distDone.FinalHash, plainDone.FinalHash)
	}
	if distDone.Result.Steps != plainDone.Result.Steps {
		t.Fatalf("steps: distributed %d, workers-2 %d", distDone.Result.Steps, plainDone.Result.Steps)
	}

	// The stream must carry progress epochs and close with a summary.
	events := readStream(t, ts, dist.ID)
	progress := 0
	for _, ev := range events {
		if ev.Type == "progress" {
			progress++
		}
	}
	if progress == 0 {
		t.Error("distributed job's stream carried no progress events")
	}
	if len(events) == 0 || events[len(events)-1].Type != "summary" {
		t.Error("distributed job's stream did not close with a summary")
	}
}

// TestDistributedJobRejects covers admission validation of distributed specs.
func TestDistributedJobRejects(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	for name, spec := range map[string]string{
		"without shards":     `{"side": 8, "dist_workers": 2}`,
		"more than shards":   `{"side": 8, "shards": "2x2", "dist_workers": 5}`,
		"negative":           `{"side": 8, "shards": "2x2", "dist_workers": -1}`,
		"with plain workers": `{"side": 8, "shards": "2x2", "dist_workers": 2, "workers": 2}`,
	} {
		resp, _ := postJob(t, ts, spec)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: POST = %d, want 400", name, resp.StatusCode)
		}
	}
}

// TestDistributedDrainCheckpointResume interrupts a distributed job with
// Drain and resumes the saved coordinated checkpoint — on a different shard
// grid with a different worker count, and once on the plain in-process
// sharded engine — expecting the same outcome as an unbroken run. This is
// the cross-engine interop contract of the .shards directory format.
func TestDistributedDrainCheckpointResume(t *testing.T) {
	dir := t.TempDir()
	s, ts := newTestServer(t, Config{Workers: 1, CheckpointDir: dir, DrainGrace: 30 * time.Millisecond})

	const problem = `"side": 6, "seed": 9, "policy": "random", "workload": "full-load", "progress_every": 1, "max_steps": 100000`
	_, st := postJob(t, ts, `{`+problem+`, "shards": "2x2", "dist_workers": 2, "step_delay": "5ms"}`)
	if st.ID == "" {
		t.Fatal("job not accepted")
	}
	waitRunning(t, ts, st.ID)
	drainQuiet(t, s)

	final := getStatus(t, ts, st.ID)
	if final.State != JobCheckpointed {
		t.Fatalf("drained job state = %q (err %q), want checkpointed", final.State, final.Error)
	}
	if !strings.HasSuffix(final.Checkpoint, ".shards") {
		t.Fatalf("distributed checkpoint path %q, want a .shards directory", final.Checkpoint)
	}
	if fi, err := os.Stat(final.Checkpoint); err != nil || !fi.IsDir() {
		t.Fatalf("checkpoint directory: %v (isDir=%v)", err, fi != nil && fi.IsDir())
	}

	// The uninterrupted fingerprint to beat, computed on a second server.
	s2, ts2 := newTestServer(t, Config{Workers: 1})
	_, ref := postJob(t, ts2, `{`+problem+`, "shards": "2x2"}`)
	refDone := waitTerminal(t, ts2, ref.ID)

	// Resume distributed on a wider grid with more workers.
	resume := fmt.Sprintf(`{%s, "shards": "3x2", "dist_workers": 3, "resume_from": %q}`, problem, final.Checkpoint)
	_, st2 := postJob(t, ts2, resume)
	done := waitTerminal(t, ts2, st2.ID)
	if done.State != JobDone {
		t.Fatalf("resumed job finished %q (err %q), want done", done.State, done.Error)
	}
	if done.FinalHash == "" || done.FinalHash != refDone.FinalHash {
		t.Fatalf("final hash: resumed-distributed %q, uninterrupted %q — recovery must be bit-identical",
			done.FinalHash, refDone.FinalHash)
	}

	// And resume the same distributed checkpoint on the in-process engine.
	resumePlain := fmt.Sprintf(`{%s, "shards": "2x2", "resume_from": %q}`, problem, final.Checkpoint)
	_, st3 := postJob(t, ts2, resumePlain)
	done3 := waitTerminal(t, ts2, st3.ID)
	if done3.State != JobDone {
		t.Fatalf("in-process resume finished %q (err %q), want done", done3.State, done3.Error)
	}
	if done3.FinalHash != refDone.FinalHash {
		t.Fatalf("final hash: distributed checkpoint resumed in-process %q, uninterrupted %q",
			done3.FinalHash, refDone.FinalHash)
	}
	drainQuiet(t, s2)
}
