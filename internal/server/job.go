package server

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"strconv"
	"sync"
	"time"

	"hotpotato/internal/checkpoint"
	"hotpotato/internal/dshard"
	"hotpotato/internal/mesh"
	"hotpotato/internal/shard"
	"hotpotato/internal/sim"
	"hotpotato/internal/spec"
)

// Duration is a time.Duration that marshals as a human-readable string
// ("250ms") and unmarshals from either a string or a nanosecond number, so
// job specs read naturally as JSON.
type Duration time.Duration

// MarshalJSON implements json.Marshaler.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON implements json.Unmarshaler.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		v, err := time.ParseDuration(s)
		if err != nil {
			return err
		}
		*d = Duration(v)
		return nil
	}
	var ns int64
	if err := json.Unmarshal(b, &ns); err != nil {
		return fmt.Errorf("duration must be a string like %q or a nanosecond count", "250ms")
	}
	*d = Duration(ns)
	return nil
}

// JobSpec is the JSON body of POST /v1/jobs: one routing problem, described
// with the same names every CLI accepts (the shared internal/spec
// registry). Zero values take the documented defaults.
type JobSpec struct {
	// Dim and Side describe the mesh (default 2 and 16); Torus selects
	// wraparound edges.
	Dim   int  `json:"dim,omitempty"`
	Side  int  `json:"side,omitempty"`
	Torus bool `json:"torus,omitempty"`
	// K is the packet count for workloads that take one (default 64).
	K int `json:"k,omitempty"`
	// Tenant names the submitting tenant for admission control and
	// accounting. Empty means the default tenant; the HTTP layer also
	// fills it from the X-Tenant request header.
	Tenant string `json:"tenant,omitempty"`
	// MaxAttempts is this job's retry budget (attempts before it is
	// reported failed), overriding the server default. 0 = server default.
	MaxAttempts int `json:"max_attempts,omitempty"`
	// Policy is a registry name (default "restricted").
	Policy string `json:"policy,omitempty"`
	// Workload selects the traffic pattern (default "uniform"). It accepts
	// either a bare registry name ("hotspot") or a structured object
	// ({"name": "hotspot", "params": {"frac": "0.8"}, "arrivals": {...}}) —
	// the same spec.WorkloadSpec every CLI flag parses. Arrivals nested here
	// attach a dynamic injection source to the run.
	Workload spec.WorkloadSpec `json:"workload,omitempty"`
	// Seed makes the job deterministic (default 1). The workload is drawn
	// from Seed and the engine runs with Seed+1, exactly like cmd/hotpotato.
	Seed int64 `json:"seed,omitempty"`
	// MaxSteps bounds the simulation length (0 = engine default).
	MaxSteps int `json:"max_steps,omitempty"`
	// Validation is the per-step checking level (default "greedy").
	Validation string `json:"validation,omitempty"`
	// Workers > 1 routes nodes concurrently inside the engine.
	Workers int `json:"workers,omitempty"`
	// Shards, when non-empty ("PxQ"), runs the job on the sharded engine
	// with that spatial decomposition (2-D meshes only; results are
	// bit-identical to the single engine's, see internal/shard). Mutually
	// exclusive with Workers and Fault. A sharded job's checkpoint is a
	// directory, and resume_from must name such a directory.
	Shards string `json:"shards,omitempty"`
	// DistWorkers, with Shards set, runs the job on the distributed
	// coordinator (internal/dshard) with that many worker processes over
	// loopback instead of in-process shard goroutines. 1 <= DistWorkers <=
	// the grid's shard count. Results stay bit-identical; checkpoints use
	// the same directory format, so distributed and in-process runs resume
	// each other's snapshots freely.
	DistWorkers int `json:"dist_workers,omitempty"`
	// NoLivelockDetect disables configuration hashing (detection is on by
	// default, so a deterministic livelock terminates the job).
	NoLivelockDetect bool `json:"no_livelock_detect,omitempty"`
	// Fault optionally installs a fault model (see spec.FaultConfig).
	Fault *spec.FaultConfig `json:"fault,omitempty"`
	// ProgressEvery is the stream epoch: a progress event every N steps
	// (default 100).
	ProgressEvery int `json:"progress_every,omitempty"`
	// StepDelay slows the engine down by sleeping this long after every
	// step. It exists for demos, load tests and drain tests — a sub-second
	// batch job becomes an observable long-running one.
	StepDelay Duration `json:"step_delay,omitempty"`
	// ResumeFrom names a checkpoint file on the server (as reported by a
	// drained job's status) to restore instead of generating the workload.
	// The rest of the spec must match the checkpointed run.
	ResumeFrom string `json:"resume_from,omitempty"`
}

// withDefaults returns the spec with zero values replaced by defaults.
func (js JobSpec) withDefaults() JobSpec {
	if js.Dim == 0 {
		js.Dim = 2
	}
	if js.Side == 0 {
		js.Side = 16
	}
	if js.Workload.Name == "" {
		js.Workload.Name = "uniform"
	}
	if js.K == 0 && !js.Workload.FixedSize() {
		js.K = 64 // fixed-size workloads derive k from the mesh; leave it 0
	}
	if js.Policy == "" {
		js.Policy = "restricted"
	}
	if js.Seed == 0 {
		js.Seed = 1
	}
	if js.ProgressEvery == 0 {
		js.ProgressEvery = 100
	}
	return js
}

// validate rejects a spec that can never build, so admission fails with a
// 400 instead of accepting a job doomed to fail. It is deliberately cheap:
// no mesh or workload is materialized (a fault script referencing an
// off-mesh node, for example, still surfaces at execution).
func (js JobSpec) validate(maxNodes, maxK int) error {
	if js.Dim < 1 {
		return fmt.Errorf("dim must be >= 1, got %d", js.Dim)
	}
	if js.Side < 2 {
		return fmt.Errorf("side must be >= 2, got %d", js.Side)
	}
	nodes := 1
	for i := 0; i < js.Dim; i++ {
		nodes *= js.Side
		if nodes > maxNodes || nodes < 0 {
			return fmt.Errorf("mesh %d^%d exceeds the server's node limit %d", js.Side, js.Dim, maxNodes)
		}
	}
	if js.Workload.FixedSize() {
		if js.K != 0 {
			return fmt.Errorf("workload %q derives its packet count from the mesh; drop k (parameters go in the workload spec)", js.Workload.Name)
		}
	} else if js.K < 1 || js.K > maxK {
		return fmt.Errorf("k must be in [1, %d], got %d", maxK, js.K)
	}
	if js.MaxSteps < 0 {
		return fmt.Errorf("max_steps must be >= 0, got %d", js.MaxSteps)
	}
	if js.Workers < 0 {
		return fmt.Errorf("workers must be >= 0, got %d", js.Workers)
	}
	if js.DistWorkers < 0 {
		return fmt.Errorf("dist_workers must be >= 0, got %d", js.DistWorkers)
	}
	if js.DistWorkers > 0 && js.Shards == "" {
		return fmt.Errorf("dist_workers needs shards (a PxQ grid for the workers to divide)")
	}
	if js.Shards != "" {
		grid, err := shard.ParseGrid(js.Shards)
		if err != nil {
			return err
		}
		switch {
		case js.Dim != 2:
			return fmt.Errorf("shards needs dim 2 (the sharded engine decomposes 2-D meshes), got dim %d", js.Dim)
		case js.Workers != 0:
			return fmt.Errorf("shards and workers are alternative parallelization schemes; pick one")
		case js.Fault != nil && js.Fault.Enabled():
			return fmt.Errorf("sharded jobs do not support fault injection")
		case js.DistWorkers > grid.Count():
			return fmt.Errorf("dist_workers %d exceeds the %s grid's %d shards", js.DistWorkers, js.Shards, grid.Count())
		}
	}
	if js.ProgressEvery < 1 {
		return fmt.Errorf("progress_every must be >= 1, got %d", js.ProgressEvery)
	}
	if js.MaxAttempts < 0 || js.MaxAttempts > 64 {
		return fmt.Errorf("max_attempts must be in [0, 64], got %d", js.MaxAttempts)
	}
	if js.StepDelay < 0 {
		return fmt.Errorf("step_delay must be >= 0")
	}
	if _, err := spec.PolicyFactory(js.Policy); err != nil {
		return err
	}
	if err := js.Workload.Validate(); err != nil {
		return err
	}
	if as := js.Workload.Arrivals; as != nil {
		if js.DistWorkers > 0 {
			return fmt.Errorf("distributed jobs do not support arrivals (injector state cannot ride a dshard checkpoint)")
		}
		if js.MaxSteps == 0 && !as.Bounded() {
			return fmt.Errorf("arrival jobs must terminate: set max_steps or give every arrival client a positive until")
		}
	}
	if _, err := spec.ParseValidation(js.Validation); err != nil {
		return err
	}
	if js.Fault != nil {
		if _, err := spec.ParseFate(js.Fault.Fate); err != nil {
			return err
		}
		if js.Fault.Rate < 0 || js.Fault.CrashRate < 0 {
			return fmt.Errorf("fault rates must be >= 0")
		}
	}
	return nil
}

// buildEngine materializes the spec into a ready-to-run engine. Each call
// builds a fresh engine (retried attempts must not share mutable state).
func (js JobSpec) buildEngine(jobTimeout time.Duration) (*sim.Engine, error) {
	var m *mesh.Mesh
	var err error
	if js.Torus {
		m, err = mesh.NewTorus(js.Dim, js.Side)
	} else {
		m, err = mesh.New(js.Dim, js.Side)
	}
	if err != nil {
		return nil, err
	}
	pol, err := spec.NewPolicy(js.Policy)
	if err != nil {
		return nil, err
	}
	lvl, err := spec.ParseValidation(js.Validation)
	if err != nil {
		return nil, err
	}
	var packets []*sim.Packet
	if js.ResumeFrom == "" { // a resumed job takes its packets from the snapshot
		packets, err = spec.BuildWorkload(js.Workload, m, js.K, rand.New(rand.NewSource(js.Seed)))
		if err != nil {
			return nil, err
		}
	}
	e, err := sim.New(m, pol, packets, sim.Options{
		Seed:           js.Seed + 1,
		MaxSteps:       js.MaxSteps,
		Validation:     lvl,
		DetectLivelock: !js.NoLivelockDetect,
		Workers:        js.Workers,
		MaxWallTime:    jobTimeout,
	})
	if err != nil {
		return nil, err
	}
	if js.Fault != nil && js.Fault.Enabled() {
		model, err := spec.NewFaults(m, *js.Fault)
		if err != nil {
			return nil, err
		}
		fate, err := spec.ParseFate(js.Fault.Fate)
		if err != nil {
			return nil, err
		}
		e.SetFaults(model, fate)
	}
	// The injection source is installed even on resume — the snapshot then
	// restores its state, keeping the resumed run bit-identical.
	if src, err := spec.BuildArrivals(js.Workload.Arrivals, m); err != nil {
		return nil, err
	} else if src != nil {
		e.SetInjector(src)
	}
	if js.ResumeFrom != "" {
		snap, err := checkpoint.Load(js.ResumeFrom)
		if err != nil {
			return nil, err
		}
		if err := e.Restore(snap); err != nil {
			return nil, fmt.Errorf("resume from %s: %w (the spec must match the checkpointed run)", js.ResumeFrom, err)
		}
	}
	return e, nil
}

// buildShardEngine is buildEngine's counterpart for sharded jobs: it
// materializes the spec into a ready-to-run shard.Engine. Validation has
// already confirmed the spec is 2-D, fault-free and parses as a grid.
func (js JobSpec) buildShardEngine(jobTimeout time.Duration) (*shard.Engine, error) {
	var m *mesh.Mesh
	var err error
	if js.Torus {
		m, err = mesh.NewTorus(js.Dim, js.Side)
	} else {
		m, err = mesh.New(js.Dim, js.Side)
	}
	if err != nil {
		return nil, err
	}
	pol, err := spec.NewPolicy(js.Policy)
	if err != nil {
		return nil, err
	}
	lvl, err := spec.ParseValidation(js.Validation)
	if err != nil {
		return nil, err
	}
	grid, err := shard.ParseGrid(js.Shards)
	if err != nil {
		return nil, err
	}
	var packets []*sim.Packet
	if js.ResumeFrom == "" { // a resumed job takes its packets from the snapshot
		packets, err = spec.BuildWorkload(js.Workload, m, js.K, rand.New(rand.NewSource(js.Seed)))
		if err != nil {
			return nil, err
		}
	}
	e, err := shard.New(m, pol, packets, shard.Options{
		Grid:           grid,
		Seed:           js.Seed + 1,
		MaxSteps:       js.MaxSteps,
		Validation:     lvl,
		DetectLivelock: !js.NoLivelockDetect,
		MaxWallTime:    jobTimeout,
	})
	if err != nil {
		return nil, err
	}
	// Injector before Restore, matching buildEngine: the manifest carries
	// the source's state and the restore re-seeds it.
	if src, err := spec.BuildArrivals(js.Workload.Arrivals, m); err != nil {
		e.Close()
		return nil, err
	} else if src != nil {
		e.SetInjector(src)
	}
	if js.ResumeFrom != "" {
		ck, err := shard.LoadDir(js.ResumeFrom)
		if err != nil {
			return nil, err
		}
		if err := e.Restore(ck); err != nil {
			e.Close()
			return nil, fmt.Errorf("resume from %s: %w (the spec must match the checkpointed run)", js.ResumeFrom, err)
		}
	}
	return e, nil
}

// distToken is the shared secret between a job's coordinator and its
// in-process workers. The loopback listener is per-job and ephemeral, so the
// token guards against cross-talk (a stray worker from another run), not
// against an adversary.
const distToken = "hotpotatod-dist"

// buildCoordinator materializes a distributed spec (Shards plus
// DistWorkers) into a dshard coordinator driving DistWorkers in-process
// workers over loopback TCP. ckptDir, when non-empty, is where coordinated
// checkpoints are persisted (same .shards directory format as the
// in-process sharded engine); ckptEvery is the rollback/save cadence (0 =
// the coordinator's default).
func (js JobSpec) buildCoordinator(jobTimeout time.Duration, ckptDir string, ckptEvery int) (*dshard.Coordinator, error) {
	if js.Workload.Arrivals != nil {
		// Validation rejects this at admission; guard the recovery path too.
		return nil, fmt.Errorf("distributed jobs do not support arrivals")
	}
	var m *mesh.Mesh
	var err error
	if js.Torus {
		m, err = mesh.NewTorus(js.Dim, js.Side)
	} else {
		m, err = mesh.New(js.Dim, js.Side)
	}
	if err != nil {
		return nil, err
	}
	grid, err := shard.ParseGrid(js.Shards)
	if err != nil {
		return nil, err
	}
	lvl, err := spec.ParseValidation(js.Validation)
	if err != nil {
		return nil, err
	}
	var packets []*sim.Packet
	var resume *shard.Checkpoint
	if js.ResumeFrom == "" { // a resumed job takes its packets from the snapshot
		packets, err = spec.BuildWorkload(js.Workload, m, js.K, rand.New(rand.NewSource(js.Seed)))
		if err != nil {
			return nil, err
		}
	} else {
		resume, err = shard.LoadDir(js.ResumeFrom)
		if err != nil {
			return nil, err
		}
	}
	c, err := dshard.New(dshard.Spec{
		Side:           js.Side,
		Wrap:           js.Torus,
		Policy:         js.Policy,
		Grid:           grid,
		Seed:           js.Seed + 1,
		MaxSteps:       js.MaxSteps,
		Validation:     lvl,
		DetectLivelock: !js.NoLivelockDetect,
	}, packets, dshard.Options{
		Workers:          js.DistWorkers,
		Token:            distToken,
		Policies:         spec.NewPolicy,
		Spawn:            dshard.InProcessSpawner(dshard.WorkerOptions{Token: distToken, Policies: spec.NewPolicy}),
		CheckpointEvery:  ckptEvery,
		CheckpointDir:    ckptDir,
		CheckpointFormat: checkpoint.Binary,
		Resume:           resume,
		MaxWallTime:      jobTimeout,
	})
	if err != nil && js.ResumeFrom != "" {
		return nil, fmt.Errorf("resume from %s: %w (the spec must match the checkpointed run)", js.ResumeFrom, err)
	}
	return c, err
}

// JobState is the lifecycle position of a job.
type JobState string

const (
	// JobQueued: accepted, waiting for a worker.
	JobQueued JobState = "queued"
	// JobRunning: executing on a worker.
	JobRunning JobState = "running"
	// JobDone: ran to its natural end (delivered, livelocked, or budget
	// exhausted — see the result for which).
	JobDone JobState = "done"
	// JobFailed: every attempt errored (bad spec deep-failure, policy
	// panic, timeout without checkpointing).
	JobFailed JobState = "failed"
	// JobCheckpointed: stopped early by drain or timeout with its state
	// saved; resubmit the same spec with resume_from to continue.
	JobCheckpointed JobState = "checkpointed"
	// JobQuarantined: a poison job, hard-stopped after repeated panics or
	// repeated crash-interrupted runs. Never retried, never recovered.
	JobQuarantined JobState = "quarantined"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == JobDone || s == JobFailed || s == JobCheckpointed || s == JobQuarantined
}

// Job is one accepted simulation job. All mutable fields are guarded by mu;
// the stream handlers follow appends to events via the notify channel,
// which is closed and replaced on every change.
type Job struct {
	// ID is the server-assigned identifier ("j000001", ...).
	ID string
	// Spec is the normalized job spec (defaults applied).
	Spec JobSpec

	// recovered marks a job re-enqueued from the WAL after a restart;
	// priorStarts is how many executions earlier daemon lives began for it
	// (the poison-job evidence the quarantine policy counts).
	recovered   bool
	priorStarts int

	mu         sync.Mutex
	state      JobState
	created    time.Time
	started    time.Time
	finished   time.Time
	attempts   int
	progress   sim.Progress
	hasProg    bool
	result     *sim.Result
	errMsg     string
	checkpoint string
	finalHash  uint64
	events     [][]byte
	streamDone bool
	notify     chan struct{}
}

func newJob(id string, js JobSpec) *Job {
	return &Job{
		ID:      id,
		Spec:    js,
		state:   JobQueued,
		created: time.Now(),
		notify:  make(chan struct{}),
	}
}

// changeLocked wakes every follower; callers hold mu.
func (j *Job) changeLocked() {
	close(j.notify)
	j.notify = make(chan struct{})
}

// publish appends one NDJSON event line and wakes followers.
func (j *Job) publish(line []byte) {
	j.mu.Lock()
	j.events = append(j.events, line)
	j.changeLocked()
	j.mu.Unlock()
}

// publishFinal appends the last event line (the summary) and marks the
// stream complete in the same critical section, so a follower that sees
// done=true has necessarily been handed every line.
func (j *Job) publishFinal(line []byte) {
	j.mu.Lock()
	j.events = append(j.events, line)
	j.streamDone = true
	j.changeLocked()
	j.mu.Unlock()
}

// eventsFrom returns the event lines at index >= i, whether the stream is
// complete (the summary line is included), and a channel closed on the
// next change.
func (j *Job) eventsFrom(i int) (lines [][]byte, done bool, changed <-chan struct{}) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if i < len(j.events) {
		lines = j.events[i:]
	}
	return lines, j.streamDone, j.notify
}

// State returns the current lifecycle state.
func (j *Job) State() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Checkpoint returns the checkpoint path recorded for the job ("" if none).
func (j *Job) Checkpoint() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.checkpoint
}

// Result returns the job's result summary, or nil before completion.
func (j *Job) Result() *sim.Result {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result
}

func (j *Job) setRunning(attempt int) {
	j.mu.Lock()
	j.state = JobRunning
	j.attempts = attempt
	if j.started.IsZero() {
		j.started = time.Now()
	}
	j.changeLocked()
	j.mu.Unlock()
}

func (j *Job) setProgress(p sim.Progress) {
	j.mu.Lock()
	j.progress = p
	j.hasProg = true
	j.mu.Unlock()
}

func (j *Job) setCheckpoint(path string) {
	j.mu.Lock()
	j.checkpoint = path
	j.mu.Unlock()
}

func (j *Job) setFinalHash(h uint64) {
	j.mu.Lock()
	j.finalHash = h
	j.mu.Unlock()
}

// FinalHash returns the engine-state fingerprint recorded at completion
// (0 before the job is done).
func (j *Job) FinalHash() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.finalHash
}

// finish moves the job to a terminal state. The caller emits the summary
// stream event separately (via publish) so followers see state first.
func (j *Job) finish(state JobState, res *sim.Result, errMsg string) {
	j.mu.Lock()
	j.state = state
	j.finished = time.Now()
	j.result = res
	j.errMsg = errMsg
	j.changeLocked()
	j.mu.Unlock()
}

// jobStatus is the JSON rendering of GET /v1/jobs/{id}.
type jobStatus struct {
	ID         string        `json:"id"`
	State      JobState      `json:"state"`
	Spec       JobSpec       `json:"spec"`
	Created    time.Time     `json:"created"`
	Started    *time.Time    `json:"started,omitempty"`
	Finished   *time.Time    `json:"finished,omitempty"`
	Attempts   int           `json:"attempts,omitempty"`
	Progress   *sim.Progress `json:"progress,omitempty"`
	Result     *sim.Result   `json:"result,omitempty"`
	Error      string        `json:"error,omitempty"`
	Checkpoint string        `json:"checkpoint,omitempty"`
	// Recovered marks jobs replayed from the WAL after a restart.
	Recovered bool `json:"recovered,omitempty"`
	// FinalHash is the engine-state fingerprint at completion, in hex: two
	// runs of the same spec — interrupted and recovered or not — must
	// report the same value (the chaos harness's bit-identity check).
	FinalHash string `json:"final_state_hash,omitempty"`
}

// status snapshots the job for the API.
func (j *Job) status() jobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := jobStatus{
		ID:         j.ID,
		State:      j.state,
		Spec:       j.Spec,
		Created:    j.created,
		Attempts:   j.attempts,
		Result:     j.result,
		Error:      j.errMsg,
		Checkpoint: j.checkpoint,
		Recovered:  j.recovered,
	}
	if j.finalHash != 0 {
		st.FinalHash = fmt.Sprintf("%016x", j.finalHash)
	}
	if !j.started.IsZero() {
		t := j.started
		st.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.Finished = &t
	}
	if j.hasProg {
		p := j.progress
		st.Progress = &p
	}
	return st
}

// jobID renders sequence numbers as stable, sortable IDs.
func jobID(n int64) string { return "j" + leftPad(strconv.FormatInt(n, 10), 6) }

func leftPad(s string, width int) string {
	for len(s) < width {
		s = "0" + s
	}
	return s
}
