package server

import (
	"encoding/json"
	"net/http"
	"testing"

	"hotpotato/internal/spec"
)

// TestSpecEndpoint: GET /v1/spec is the discovery surface — every
// registered policy, workload and arrival process, with parameter schemas.
func TestSpecEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, err := http.Get(ts.URL + "/v1/spec")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/spec = %d", resp.StatusCode)
	}
	var got spec.CatalogInfo
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if len(got.Policies) != len(spec.PolicyNames()) {
		t.Errorf("catalog lists %d policies, registry has %d", len(got.Policies), len(spec.PolicyNames()))
	}
	if len(got.Workloads) != len(spec.WorkloadNames()) {
		t.Errorf("catalog lists %d workloads, registry has %d", len(got.Workloads), len(spec.WorkloadNames()))
	}
	if len(got.Arrivals) != len(spec.ArrivalNames()) {
		t.Errorf("catalog lists %d arrivals, registry has %d", len(got.Arrivals), len(spec.ArrivalNames()))
	}
	var hotspot *spec.CatalogEntry
	for i := range got.Workloads {
		if got.Workloads[i].Name == "hotspot" {
			hotspot = &got.Workloads[i]
		}
	}
	if hotspot == nil {
		t.Fatal("catalog missing hotspot workload")
	}
	if len(hotspot.Params) == 0 || hotspot.Params[0].Doc == "" {
		t.Errorf("hotspot schema lacks documented parameters: %+v", hotspot)
	}
	var weighted *spec.CatalogEntry
	for i := range got.Policies {
		if got.Policies[i].Name == "weighted" {
			weighted = &got.Policies[i]
		}
	}
	if weighted == nil {
		t.Fatal("catalog missing weighted policy")
	}
	if len(weighted.Params) != 4 {
		t.Errorf("weighted policy schema has %d parameters, want 4 (age, defl, dist, restrict)", len(weighted.Params))
	}
	for _, p := range weighted.Params {
		if p.Doc == "" || p.Type != "float" {
			t.Errorf("weighted parameter %q lacks doc or float type: %+v", p.Name, p)
		}
	}
}

// TestJobStructuredWorkload: the object form of WorkloadSpec — parameters
// plus nested arrivals — is accepted by POST /v1/jobs and runs to done.
func TestJobStructuredWorkload(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	body := `{
		"side": 8, "seed": 4, "k": 10,
		"workload": {
			"name": "hotspot",
			"params": {"frac": "0.8"},
			"arrivals": {"process": "poisson", "params": {"rate": "0.05", "until": "40"}}
		}
	}`
	resp, st := postJob(t, ts, body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST structured workload = %d", resp.StatusCode)
	}
	final := waitTerminal(t, ts, st.ID)
	if final.State != JobDone {
		t.Fatalf("job ended %q (%s), want done", final.State, final.Error)
	}
	if final.Result == nil || final.Result.Delivered <= 10 {
		t.Errorf("arrivals generated nothing beyond the batch: %+v", final.Result)
	}
	// The status echoes the structured spec back.
	if final.Spec.Workload.Name != "hotspot" || final.Spec.Workload.Arrivals == nil {
		t.Errorf("status lost the workload structure: %+v", final.Spec.Workload)
	}
}

// TestJobFlagSyntaxWorkload: the bare-string form accepts the same flag
// syntax the CLIs parse, so one spec string works on every surface.
func TestJobFlagSyntaxWorkload(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, st := postJob(t, ts, `{"side": 8, "seed": 4, "k": 10, "workload": "hotspot:frac=0.8"}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST flag-syntax workload = %d", resp.StatusCode)
	}
	final := waitTerminal(t, ts, st.ID)
	if final.State != JobDone {
		t.Fatalf("job ended %q (%s), want done", final.State, final.Error)
	}
	if final.Spec.Workload.Params["frac"] != "0.8" {
		t.Errorf("flag syntax lost parameters: %+v", final.Spec.Workload)
	}
}

// TestJobShardedArrivals: arrivals ride the sharded engine too, and the
// run matches the parallel single-engine run of the same spec bit for bit
// (the parity contract is defined against workers > 1, where tie-breaks
// use per-(seed, step, node) streams and injection has the serial stream
// to itself).
func TestJobShardedArrivals(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	const problem = `"side": 8, "seed": 6,
		"workload": {"name": "none", "arrivals": {"process": "adversary", "params": {"rho": "1.5", "sigma": "4", "until": "30"}}}`

	_, single := postJob(t, ts, `{`+problem+`, "workers": 2}`)
	singleFinal := waitTerminal(t, ts, single.ID)
	if singleFinal.State != JobDone {
		t.Fatalf("single job ended %q (%s)", singleFinal.State, singleFinal.Error)
	}

	_, sharded := postJob(t, ts, `{`+problem+`, "shards": "2x2"}`)
	shardedFinal := waitTerminal(t, ts, sharded.ID)
	if shardedFinal.State != JobDone {
		t.Fatalf("sharded job ended %q (%s)", shardedFinal.State, shardedFinal.Error)
	}

	if singleFinal.FinalHash == "" || singleFinal.FinalHash != shardedFinal.FinalHash {
		t.Errorf("sharded arrivals diverged: hash %s != %s", shardedFinal.FinalHash, singleFinal.FinalHash)
	}
	if singleFinal.Result.Delivered != shardedFinal.Result.Delivered {
		t.Errorf("delivered %d != %d", shardedFinal.Result.Delivered, singleFinal.Result.Delivered)
	}
}

// TestJobWorkloadRejections: the admission-time validation catches the new
// failure modes with 400s.
func TestJobWorkloadRejections(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	cases := []struct {
		name, body string
	}{
		{"bad param value", `{"workload": "hotspot:frac=1.5"}`},
		{"unknown param", `{"workload": "uniform:x=1"}`},
		{"fixed-size with k", `{"workload": "full-load", "k": 10}`},
		{"unbounded arrivals", `{"workload": {"name": "none", "arrivals": "poisson:rate=0.1"}}`},
		{"arrivals on dist", `{"side": 8, "shards": "2x2", "dist_workers": 2,
			"workload": {"name": "none", "arrivals": "poisson:rate=0.1,until=10"}}`},
		{"bad arrival process", `{"workload": {"name": "none", "arrivals": "warp:rate=1"}}`},
	}
	for _, tc := range cases {
		resp, _ := postJob(t, ts, tc.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, resp.StatusCode)
		}
	}
	// Fixed-size without k is the valid spelling.
	resp, st := postJob(t, ts, `{"side": 6, "workload": "full-load"}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("full-load without k = %d", resp.StatusCode)
	}
	if final := waitTerminal(t, ts, st.ID); final.State != JobDone {
		t.Errorf("full-load job ended %q (%s)", final.State, final.Error)
	}
}
