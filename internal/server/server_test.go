package server

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// newTestServer builds a started server plus its HTTP frontend.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// postJob submits a spec and returns the response and decoded status.
func postJob(t *testing.T, ts *httptest.Server, spec string) (*http.Response, jobStatus) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st jobStatus
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatalf("decoding 202 body: %v", err)
		}
	}
	return resp, st
}

// getStatus fetches one job's status.
func getStatus(t *testing.T, ts *httptest.Server, id string) jobStatus {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET status = %d", resp.StatusCode)
	}
	var st jobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// waitTerminal polls until the job reaches a terminal state.
func waitTerminal(t *testing.T, ts *httptest.Server, id string) jobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		st := getStatus(t, ts, id)
		if st.State.Terminal() {
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached a terminal state", id)
	return jobStatus{}
}

// streamEvent is the decoded shape of one NDJSON line.
type streamEvent struct {
	Type      string `json:"type"`
	JobID     string `json:"job_id"`
	Time      int    `json:"time"`
	Delivered int    `json:"delivered"`
	State     JobState
	Result    *json.RawMessage `json:"result"`
}

// readStream consumes a job's NDJSON stream to the end.
func readStream(t *testing.T, ts *httptest.Server, id string) []streamEvent {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET stream = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("stream Content-Type = %q", ct)
	}
	var events []streamEvent
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		var ev streamEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("reading stream: %v", err)
	}
	return events
}

// TestJobLifecycle is the package's end-to-end: submit over HTTP, watch
// the stream, confirm status and metrics afterwards.
func TestJobLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	resp, st := postJob(t, ts, `{"side": 4, "k": 8, "seed": 3, "progress_every": 1}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST = %d, want 202", resp.StatusCode)
	}
	if st.ID == "" || st.State != JobQueued {
		t.Fatalf("202 body = %+v", st)
	}
	if loc := resp.Header.Get("Location"); loc != "/v1/jobs/"+st.ID {
		t.Errorf("Location = %q", loc)
	}

	events := readStream(t, ts, st.ID)
	if len(events) < 2 {
		t.Fatalf("stream had %d events, want progress + summary", len(events))
	}
	last := events[len(events)-1]
	if last.Type != "summary" {
		t.Fatalf("stream did not end with a summary: %+v", last)
	}
	prevTime := -1
	for _, ev := range events[:len(events)-1] {
		if ev.Type != "progress" {
			t.Fatalf("non-progress event before summary: %+v", ev)
		}
		if ev.Time < prevTime {
			t.Fatalf("stream time went backwards: %d after %d", ev.Time, prevTime)
		}
		prevTime = ev.Time
	}

	final := waitTerminal(t, ts, st.ID)
	if final.State != JobDone {
		t.Fatalf("job finished %q (err %q), want done", final.State, final.Error)
	}
	if final.Result == nil || final.Result.Delivered != final.Result.Total {
		t.Fatalf("result %+v, want all delivered", final.Result)
	}
	if final.Progress == nil || final.Progress.Delivered != final.Result.Delivered {
		t.Fatalf("progress %+v disagrees with result", final.Progress)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	body, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(body)
	for _, want := range []string{
		"hotpotatod_jobs_accepted_total 1",
		"hotpotatod_jobs_completed_total 1",
		"hotpotatod_jobs_rejected_total 0",
		"hotpotatod_jobs_running 0",
		"hotpotatod_engine_steps_total",
		"hotpotatod_step_latency_seconds_bucket",
		"hotpotatod_job_steps_per_second_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestStreamAfterCompletion replays a finished job's whole history.
func TestStreamAfterCompletion(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	_, st := postJob(t, ts, `{"side": 4, "k": 6, "seed": 5, "progress_every": 1}`)
	waitTerminal(t, ts, st.ID)

	events := readStream(t, ts, st.ID)
	if len(events) == 0 || events[len(events)-1].Type != "summary" {
		t.Fatalf("replayed stream malformed: %d events", len(events))
	}
}

// TestBackpressure fills the queue behind a deliberately stuck worker and
// expects 429 + Retry-After.
func TestBackpressure(t *testing.T) {
	started := make(chan *Job)
	release := make(chan struct{})
	s, ts := newTestServer(t, Config{
		Workers:    1,
		QueueDepth: 1,
		OnJobStart: func(j *Job) {
			started <- j
			<-release
		},
	})
	defer close(release)

	spec := `{"side": 4, "k": 4}`
	if resp, _ := postJob(t, ts, spec); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first POST = %d", resp.StatusCode)
	}
	<-started // the worker holds job 1; the queue is now empty

	if resp, _ := postJob(t, ts, spec); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("second POST = %d, want 202 (queued)", resp.StatusCode)
	}
	resp, _ := postJob(t, ts, spec)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third POST = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	if got := s.rejected.Value(); got != 1 {
		t.Errorf("rejected counter = %d, want 1", got)
	}
	go func() { <-started }() // let the queued job start once released
}

// TestSpecValidation exercises admission-time 400s.
func TestSpecValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxNodes: 1024})
	for _, tc := range []struct{ name, spec string }{
		{"unknown policy", `{"policy": "psychic"}`},
		{"unknown workload", `{"workload": "chaos"}`},
		{"bad side", `{"side": 1}`},
		{"too many nodes", `{"dim": 3, "side": 32}`},
		{"unknown field", `{"sides": 8}`},
		{"bad duration", `{"step_delay": "fast"}`},
		{"negative fault rate", `{"fault": {"rate": -1}}`},
	} {
		resp, _ := postJob(t, ts, tc.spec)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: POST = %d, want 400", tc.name, resp.StatusCode)
		}
	}
}

// TestNotFound covers unknown job IDs on both endpoints.
func TestNotFound(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, path := range []string{"/v1/jobs/j999999", "/v1/jobs/j999999/stream"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s = %d, want 404", path, resp.StatusCode)
		}
	}
}

// TestListJobs checks the collection endpoint preserves submission order.
func TestListJobs(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	var ids []string
	for i := 0; i < 3; i++ {
		_, st := postJob(t, ts, fmt.Sprintf(`{"side": 4, "k": 4, "seed": %d}`, i+1))
		ids = append(ids, st.ID)
	}
	for _, id := range ids {
		waitTerminal(t, ts, id)
	}
	resp, err := http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list []jobStatus
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 3 {
		t.Fatalf("list has %d jobs, want 3", len(list))
	}
	for i, st := range list {
		if st.ID != ids[i] {
			t.Errorf("list[%d] = %s, want %s (submission order)", i, st.ID, ids[i])
		}
	}
}

// TestHealthEndpoints checks liveness and readiness.
func TestHealthEndpoints(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s = %d, want 200", path, resp.StatusCode)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("readyz while draining = %d, want 503", resp.StatusCode)
	}
}

// TestJobFailure routes a spec that validates shallowly but dies at
// execution (fault script naming an off-mesh node) into the failed state.
func TestJobFailure(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	_, st := postJob(t, ts, `{"side": 4, "k": 4, "fault": {"script": "1 node-down 9999\n"}}`)
	if st.ID == "" {
		t.Fatal("job was not accepted")
	}
	final := waitTerminal(t, ts, st.ID)
	if final.State != JobFailed || final.Error == "" {
		t.Fatalf("job finished %q (err %q), want failed with message", final.State, final.Error)
	}
}

// TestDeterministicResults runs the same seed twice and expects identical
// summaries — the service must preserve the engine's determinism.
func TestDeterministicResults(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	spec := `{"side": 6, "k": 24, "seed": 42}`
	_, st1 := postJob(t, ts, spec)
	_, st2 := postJob(t, ts, spec)
	r1 := waitTerminal(t, ts, st1.ID).Result
	r2 := waitTerminal(t, ts, st2.ID).Result
	if r1 == nil || r2 == nil {
		t.Fatal("missing results")
	}
	if r1.Steps != r2.Steps || r1.Delivered != r2.Delivered || r1.TotalHops != r2.TotalHops {
		t.Fatalf("same seed diverged: %+v vs %+v", r1, r2)
	}
}
