package server

import (
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// chaosSpec is the deterministic workload every chaos job runs: slow enough
// (per-step delay) that a kill lands mid-run, deterministic so an
// uninterrupted baseline exists to compare fingerprints against.
func chaosSpec(seed int64) JobSpec {
	return JobSpec{Side: 8, K: 48, Seed: seed, ProgressEvery: 1, StepDelay: Duration(time.Millisecond)}
}

// waitJobDone polls a job until it reaches a terminal state.
func waitJobDone(t *testing.T, s *Server, id string) JobState {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		j, ok := s.Job(id)
		if !ok {
			t.Fatalf("job %s vanished from the table", id)
		}
		if st := j.State(); st.Terminal() {
			return st
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never reached a terminal state", id)
	return ""
}

// TestChaosKillRecover is the durability harness: submit a fixed set of
// deterministic jobs across repeated hard crashes (Kill closes the WAL
// first, exactly like kill -9 discarding unflushed state), recover from the
// WAL each life, and at the end demand a balanced ledger — every accepted
// job present and done, none lost, none duplicated — with every final
// engine-state fingerprint equal to an uninterrupted baseline run's.
func TestChaosKillRecover(t *testing.T) {
	const (
		totalJobs  = 12
		killCycles = 5
	)

	// Phase 1: the uninterrupted baseline. No WAL, no kills; record each
	// seed's final fingerprint.
	baseline := make(map[int64]uint64, totalJobs)
	{
		s, err := New(Config{Workers: 2, QueueDepth: totalJobs})
		if err != nil {
			t.Fatal(err)
		}
		s.Start()
		ids := make(map[string]int64, totalJobs)
		for i := 1; i <= totalJobs; i++ {
			j, err := s.Submit(chaosSpec(int64(i)))
			if err != nil {
				t.Fatalf("baseline submit %d: %v", i, err)
			}
			ids[j.ID] = int64(i)
		}
		for id, seed := range ids {
			if st := waitJobDone(t, s, id); st != JobDone {
				t.Fatalf("baseline job %s (seed %d) ended %q", id, seed, st)
			}
			j, _ := s.Job(id)
			h := j.FinalHash()
			if h == 0 {
				t.Fatalf("baseline job %s finished without a fingerprint", id)
			}
			baseline[seed] = h
		}
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Drain(ctx); err != nil {
			t.Fatal(err)
		}
	}

	// Phase 2: the same specs, submitted a few per daemon life, each life
	// ended by a hard crash at a different point in the work.
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "ckpt")
	if err := os.MkdirAll(ckpt, 0o755); err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Workers:         2,
		QueueDepth:      totalJobs,
		WALPath:         filepath.Join(dir, "jobs.wal"),
		CheckpointDir:   ckpt,
		CheckpointEvery: 3,
		QuarantineAfter: -1, // kills are the harness's fault, not the jobs'
		Logf:            t.Logf,
	}
	submitted := make(map[string]int64) // job ID -> seed (the ledger)
	next := int64(0)
	for cycle := 0; cycle < killCycles; cycle++ {
		s, err := New(cfg)
		if err != nil {
			t.Fatalf("cycle %d: recovery failed: %v", cycle, err)
		}
		s.Start()
		// Ledger check: every job ever accepted must have survived the crash.
		for id := range submitted {
			if _, ok := s.Job(id); !ok {
				t.Fatalf("cycle %d: accepted job %s lost in the crash", cycle, id)
			}
		}
		for n := 0; n < totalJobs/killCycles+1 && next < totalJobs; n++ {
			next++
			j, err := s.Submit(chaosSpec(next))
			if err != nil {
				t.Fatalf("cycle %d: submit seed %d: %v", cycle, next, err)
			}
			submitted[j.ID] = next
		}
		// Let a different amount of work happen each cycle, then crash.
		time.Sleep(time.Duration(15+25*cycle) * time.Millisecond)
		s.Kill()
	}
	if next != totalJobs {
		t.Fatalf("harness submitted %d of %d jobs", next, totalJobs)
	}

	// Phase 3: the final life runs everything to completion.
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("final recovery failed: %v", err)
	}
	s.Start()
	for id, seed := range submitted {
		if st := waitJobDone(t, s, id); st != JobDone {
			j, _ := s.Job(id)
			t.Errorf("job %s (seed %d) ended %q: %s", id, seed, st, j.status().Error)
			continue
		}
		j, _ := s.Job(id)
		if got, want := j.FinalHash(), baseline[seed]; got != want {
			t.Errorf("job %s (seed %d): recovered fingerprint %016x != baseline %016x — recovery was not bit-identical",
				id, seed, got, want)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}

	// The ledger must balance exactly: the final table holds every submitted
	// job and nothing else (plus nothing was double-assigned an ID).
	if got := len(s.jobs); got != totalJobs {
		ids := make([]string, 0, got)
		for id := range s.jobs {
			ids = append(ids, id)
		}
		t.Fatalf("final job table holds %d jobs, want %d: %v", got, totalJobs, ids)
	}
}

// TestChaosRecoveredJobsSurviveBackToBackCrashes crashes before any work can
// happen at all: a job accepted and never started must still be recovered
// through multiple immediate kills.
func TestChaosRecoveredJobsSurviveBackToBackCrashes(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		Workers:         1,
		WALPath:         filepath.Join(dir, "jobs.wal"),
		QuarantineAfter: -1,
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Never started: no workers running, the job sits queued.
	j, err := s.Submit(JobSpec{Side: 4, K: 8, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	s.Kill()

	for i := 0; i < 3; i++ {
		s, err = New(cfg)
		if err != nil {
			t.Fatalf("recovery %d: %v", i, err)
		}
		got, ok := s.Job(j.ID)
		if !ok {
			t.Fatalf("recovery %d: job lost", i)
		}
		if st := got.State(); st != JobQueued {
			t.Fatalf("recovery %d: job state %q, want queued", i, st)
		}
		s.Kill()
	}

	// Last life actually runs it.
	s, err = New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	if st := waitJobDone(t, s, j.ID); st != JobDone {
		t.Fatalf("job ended %q, want done", st)
	}
	got, _ := s.Job(j.ID)
	if !got.recovered {
		t.Error("job not marked recovered")
	}
	if s.recovered.Value() == 0 {
		t.Error("recovered counter not incremented")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestChaosLedgerAcrossRestartIncludesHistory verifies that terminal fates
// recorded in one life are visible history in the next — results,
// fingerprints and errors included — without re-running anything.
func TestChaosLedgerAcrossRestartIncludesHistory(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Workers: 1, WALPath: filepath.Join(dir, "jobs.wal")}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	j, err := s.Submit(JobSpec{Side: 4, K: 8, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if st := waitJobDone(t, s, j.ID); st != JobDone {
		t.Fatalf("job ended %q", st)
	}
	wantHash := func() uint64 { jj, _ := s.Job(j.ID); return jj.FinalHash() }()
	wantSteps := func() int { jj, _ := s.Job(j.ID); return jj.Result().Steps }()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}

	s2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Kill()
	jj, ok := s2.Job(j.ID)
	if !ok {
		t.Fatal("finished job missing after restart")
	}
	if st := jj.State(); st != JobDone {
		t.Fatalf("replayed state %q, want done", st)
	}
	if jj.Result() == nil || jj.Result().Steps != wantSteps {
		t.Errorf("replayed result %+v, want %d steps", jj.Result(), wantSteps)
	}
	if got := jj.FinalHash(); got != wantHash {
		t.Errorf("replayed fingerprint %016x, want %016x", got, wantHash)
	}
	if s2.completed.Value() != 0 {
		t.Error("restart re-counted (or re-ran) an already finished job")
	}
}
