package server

import (
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"hotpotato/internal/shard"
)

// TestShardedJobLifecycle runs the same routing problem as a sharded job
// and as a workers-2 job and demands identical final-state fingerprints —
// the parity contract of internal/shard, observed end to end through the
// HTTP API.
func TestShardedJobLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	const problem = `"side": 8, "seed": 3, "policy": "random", "workload": "full-load", "progress_every": 2`
	resp, sharded := postJob(t, ts, `{`+problem+`, "shards": "2x2"}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST sharded = %d, want 202", resp.StatusCode)
	}
	_, plain := postJob(t, ts, `{`+problem+`, "workers": 2}`)

	shardedDone := waitTerminal(t, ts, sharded.ID)
	plainDone := waitTerminal(t, ts, plain.ID)
	if shardedDone.State != JobDone {
		t.Fatalf("sharded job finished %q (err %q), want done", shardedDone.State, shardedDone.Error)
	}
	if shardedDone.Result == nil || shardedDone.Result.Delivered != shardedDone.Result.Total {
		t.Fatalf("sharded result %+v, want all delivered", shardedDone.Result)
	}
	if shardedDone.FinalHash == "" || shardedDone.FinalHash != plainDone.FinalHash {
		t.Fatalf("final hash: sharded %q, workers-2 %q — sharded runs must be bit-identical",
			shardedDone.FinalHash, plainDone.FinalHash)
	}
	if shardedDone.Result.Steps != plainDone.Result.Steps {
		t.Fatalf("steps: sharded %d, workers-2 %d", shardedDone.Result.Steps, plainDone.Result.Steps)
	}

	// The stream must carry progress epochs and close with a summary.
	events := readStream(t, ts, sharded.ID)
	progress := 0
	for _, ev := range events {
		if ev.Type == "progress" {
			progress++
		}
	}
	if progress == 0 {
		t.Error("sharded job's stream carried no progress events")
	}
	if len(events) == 0 || events[len(events)-1].Type != "summary" {
		t.Error("sharded job's stream did not close with a summary")
	}
}

// TestShardedJobRejects covers admission validation of sharded specs.
func TestShardedJobRejects(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	for name, spec := range map[string]string{
		"malformed grid":  `{"side": 8, "shards": "2x"}`,
		"grid too wide":   `{"side": 8, "shards": "9x1"}`,
		"with workers":    `{"side": 8, "shards": "2x2", "workers": 2}`,
		"3-dim mesh":      `{"dim": 3, "side": 4, "shards": "2x2"}`,
		"fault injection": `{"side": 8, "shards": "2x2", "fault": {"rate": 0.01}}`,
	} {
		resp, _ := postJob(t, ts, spec)
		if name == "grid too wide" {
			// Grid-vs-side fit is only checked at build time (validate is
			// deliberately cheap); admission accepts, execution fails.
			if resp.StatusCode != http.StatusAccepted {
				t.Errorf("%s: POST = %d, want 202 (fails at execution)", name, resp.StatusCode)
			}
			continue
		}
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: POST = %d, want 400", name, resp.StatusCode)
		}
	}
}

// TestShardedDrainCheckpointResume interrupts a sharded job with Drain and
// resumes it — on a different shard grid, which the directory checkpoint
// format explicitly permits — expecting the same outcome as an unbroken run.
func TestShardedDrainCheckpointResume(t *testing.T) {
	dir := t.TempDir()
	s, ts := newTestServer(t, Config{Workers: 1, CheckpointDir: dir, DrainGrace: 30 * time.Millisecond})

	const problem = `"side": 6, "seed": 9, "policy": "random", "workload": "full-load", "progress_every": 1, "max_steps": 100000`
	_, st := postJob(t, ts, `{`+problem+`, "shards": "2x2", "step_delay": "5ms"}`)
	if st.ID == "" {
		t.Fatal("job not accepted")
	}
	waitRunning(t, ts, st.ID)
	drainQuiet(t, s)

	final := getStatus(t, ts, st.ID)
	if final.State != JobCheckpointed {
		t.Fatalf("drained job state = %q (err %q), want checkpointed", final.State, final.Error)
	}
	if !strings.HasSuffix(final.Checkpoint, ".shards") {
		t.Fatalf("sharded checkpoint path %q, want a .shards directory", final.Checkpoint)
	}
	if fi, err := os.Stat(final.Checkpoint); err != nil || !fi.IsDir() {
		t.Fatalf("checkpoint directory: %v (isDir=%v)", err, fi != nil && fi.IsDir())
	}

	// The uninterrupted fingerprint to beat, computed on a second server.
	s2, ts2 := newTestServer(t, Config{Workers: 1})
	_, ref := postJob(t, ts2, `{`+problem+`, "shards": "2x2"}`)
	refDone := waitTerminal(t, ts2, ref.ID)

	resume := fmt.Sprintf(`{%s, "shards": "3x2", "resume_from": %q}`, problem, final.Checkpoint)
	_, st2 := postJob(t, ts2, resume)
	done := waitTerminal(t, ts2, st2.ID)
	if done.State != JobDone {
		t.Fatalf("resumed job finished %q (err %q), want done", done.State, done.Error)
	}
	if done.Result.Steps <= final.Progress.Time {
		t.Errorf("resumed run's final step %d not beyond checkpoint step %d", done.Result.Steps, final.Progress.Time)
	}
	if done.FinalHash == "" || done.FinalHash != refDone.FinalHash {
		t.Fatalf("final hash: resumed-on-3x2 %q, uninterrupted %q — recovery must be bit-identical",
			done.FinalHash, refDone.FinalHash)
	}
	drainQuiet(t, s2)
}

// TestShardedCheckpointRemovedWhenDone: a finished sharded job must not
// leave its periodic checkpoint directory behind.
func TestShardedCheckpointRemovedWhenDone(t *testing.T) {
	dir := t.TempDir()
	s, ts := newTestServer(t, Config{Workers: 1, CheckpointDir: dir, CheckpointEvery: 2})
	_, st := postJob(t, ts, `{"side": 6, "k": 24, "seed": 9, "shards": "2x2", "progress_every": 1}`)
	done := waitTerminal(t, ts, st.ID)
	if done.State != JobDone {
		t.Fatalf("job finished %q (err %q), want done", done.State, done.Error)
	}
	if _, err := os.Stat(filepath.Join(dir, st.ID+".shards")); !os.IsNotExist(err) {
		t.Errorf("finished job's checkpoint dir still present (stat err %v)", err)
	}
	drainQuiet(t, s)
}

// TestShardedKillRecoverResumesFromCheckpoint hard-crashes a daemon while a
// sharded job is mid-run with a committed checkpoint on disk, and demands
// that WAL recovery re-enqueues the job resuming from its .shards directory
// — not from scratch — and that the finished run's fingerprint still equals
// an uninterrupted baseline's.
func TestShardedKillRecoverResumesFromCheckpoint(t *testing.T) {
	spec := `{"side": 8, "k": 48, "seed": 11, "shards": "2x2", "progress_every": 1, "step_delay": "2ms"}`

	// Uninterrupted baseline of the same problem.
	var baseline string
	{
		s, ts := newTestServer(t, Config{Workers: 1})
		_, st := postJob(t, ts, spec)
		done := waitTerminal(t, ts, st.ID)
		if done.State != JobDone || done.FinalHash == "" {
			t.Fatalf("baseline finished %q (hash %q), want done", done.State, done.FinalHash)
		}
		baseline = done.FinalHash
		drainQuiet(t, s)
	}

	dir := t.TempDir()
	ckpt := filepath.Join(dir, "ckpt")
	if err := os.MkdirAll(ckpt, 0o755); err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Workers:         1,
		WALPath:         filepath.Join(dir, "jobs.wal"),
		CheckpointDir:   ckpt,
		CheckpointEvery: 2,
		QuarantineAfter: -1,
		Logf:            t.Logf,
	}
	s, ts := newTestServer(t, cfg)
	_, st := postJob(t, ts, spec)

	// Kill only once a checkpoint has been committed, so recovery has
	// something to resume from.
	ckdir := filepath.Join(ckpt, st.ID+".shards")
	deadline := time.Now().Add(30 * time.Second)
	for !shard.HasCheckpoint(ckdir) {
		if time.Now().After(deadline) {
			t.Fatalf("no committed checkpoint in %s before the deadline", ckdir)
		}
		time.Sleep(2 * time.Millisecond)
	}
	ts.Close()
	s.Kill()

	s2, err := New(cfg)
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	s2.Start()
	j, ok := s2.Job(st.ID)
	if !ok {
		t.Fatalf("job %s lost in the crash", st.ID)
	}
	if got := j.Spec.ResumeFrom; got != ckdir {
		t.Fatalf("recovered job resume_from = %q, want %q — sharded recovery must resume from the checkpoint directory", got, ckdir)
	}
	if end := waitJobDone(t, s2, st.ID); end != JobDone {
		t.Fatalf("recovered job finished %q, want done", end)
	}
	if got := fmt.Sprintf("%016x", j.FinalHash()); got != baseline {
		t.Fatalf("recovered fingerprint %s != baseline %s — resumed run not bit-identical", got, baseline)
	}
	drainQuiet(t, s2)
}
