package server

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestMetricsCatalogGolden pins the daemon's full metric catalog — every
// HELP and TYPE line /metrics exposes — against a golden file, so adding,
// renaming or dropping a metric (recovery, retry and quarantine counters,
// the WAL fsync histogram, the degraded gauge, ...) is a reviewed,
// deliberate act rather than a silent dashboard break.
func TestMetricsCatalogGolden(t *testing.T) {
	s, err := New(Config{WALPath: filepath.Join(t.TempDir(), "jobs.wal")})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Kill()

	var buf strings.Builder
	if err := s.reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	var catalog []string
	for _, line := range strings.Split(buf.String(), "\n") {
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			catalog = append(catalog, line)
		}
	}
	got := strings.Join(catalog, "\n") + "\n"

	golden := filepath.Join("testdata", "metrics_catalog.golden")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if got != string(want) {
		t.Errorf("metric catalog drifted from %s (run with -update if intended):\ngot:\n%s\nwant:\n%s",
			golden, got, want)
	}
}
