package server

import (
	"context"
	"encoding/json"
	"net/http"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"hotpotato/internal/server/store"
)

// writeWAL hand-crafts a WAL with the given records (an accepted record is
// prepended), for tests that need precise crash evidence.
func writeWAL(t *testing.T, path string, recs ...store.Record) {
	t.Helper()
	s, _, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for _, r := range recs {
		if err := s.Append(r); err != nil {
			t.Fatal(err)
		}
	}
}

// TestQuarantineAtRecovery: a job whose WAL shows QuarantineAfter starts and
// no terminal record is a poison job — it must not be re-enqueued.
func TestQuarantineAtRecovery(t *testing.T) {
	wal := filepath.Join(t.TempDir(), "jobs.wal")
	spec, _ := json.Marshal(JobSpec{Side: 4, K: 8})
	writeWAL(t, wal,
		store.Record{Job: "j000001", Op: store.OpAccepted, Tenant: "default", Spec: spec},
		store.Record{Job: "j000001", Op: store.OpRunning, Attempt: 1},
		store.Record{Job: "j000001", Op: store.OpRunning, Attempt: 2},
		store.Record{Job: "j000001", Op: store.OpRunning, Attempt: 3},
	)
	s, err := New(Config{WALPath: wal, QuarantineAfter: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Kill()
	j, ok := s.Job("j000001")
	if !ok {
		t.Fatal("job missing after recovery")
	}
	if st := j.State(); st != JobQuarantined {
		t.Fatalf("job recovered into %q, want quarantined", st)
	}
	if s.quarantined.Value() != 1 {
		t.Errorf("quarantined counter = %d, want 1", s.quarantined.Value())
	}
	// The verdict must itself be durable: a second restart replays it.
	s.Kill()
	s2, err := New(Config{WALPath: wal, QuarantineAfter: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Kill()
	j2, _ := s2.Job("j000001")
	if st := j2.State(); st != JobQuarantined {
		t.Fatalf("second restart recovered %q, want quarantined (verdict not durable)", st)
	}
	if s2.quarantined.Value() != 0 {
		t.Error("replayed quarantine re-counted as a fresh one")
	}
}

// TestQuarantineDisabled: negative QuarantineAfter recovers even a job with
// heavy crash evidence.
func TestQuarantineDisabled(t *testing.T) {
	wal := filepath.Join(t.TempDir(), "jobs.wal")
	spec, _ := json.Marshal(JobSpec{Side: 4, K: 8, Seed: 3})
	recs := []store.Record{{Job: "j000001", Op: store.OpAccepted, Spec: spec}}
	for i := 1; i <= 9; i++ {
		recs = append(recs, store.Record{Job: "j000001", Op: store.OpRunning, Attempt: i})
	}
	writeWAL(t, wal, recs...)
	s, err := New(Config{WALPath: wal, QuarantineAfter: -1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	if st := waitJobDone(t, s, "j000001"); st != JobDone {
		t.Fatalf("job ended %q, want done", st)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestLiveQuarantinePanicJob: a job that panics on every attempt within one
// daemon life is quarantined once its starts hit the threshold.
func TestLiveQuarantinePanicJob(t *testing.T) {
	poison := "j000001"
	s, ts := newTestServer(t, Config{
		Workers:         1,
		MaxAttempts:     5,
		QuarantineAfter: 3,
		OnJobStart: func(j *Job) {
			if j.ID == poison {
				panic("poison job ate the worker")
			}
		},
	})
	_, st := postJob(t, ts, `{"side": 4, "k": 4, "max_attempts": 5}`)
	if st.ID != poison {
		t.Fatalf("job ID = %q, want %q", st.ID, poison)
	}
	final := waitTerminal(t, ts, st.ID)
	if final.State != JobQuarantined {
		t.Fatalf("poison job ended %q (err %q), want quarantined", final.State, final.Error)
	}
	if !strings.Contains(final.Error, "3 start(s)") {
		t.Errorf("quarantine error %q does not cite 3 starts", final.Error)
	}
	if s.quarantined.Value() != 1 {
		t.Errorf("quarantined counter = %d, want 1", s.quarantined.Value())
	}
	// A healthy job on the same server still runs fine afterwards.
	_, st2 := postJob(t, ts, `{"side": 4, "k": 4}`)
	if got := waitTerminal(t, ts, st2.ID); got.State != JobDone {
		t.Fatalf("healthy job after quarantine ended %q", got.State)
	}
}

// TestRetryBudget: a job that panics once then succeeds consumes a retry
// and lands done, with the retry counted.
func TestRetryBudget(t *testing.T) {
	calls := 0
	s, ts := newTestServer(t, Config{
		Workers: 1,
		OnJobStart: func(j *Job) {
			calls++
			if calls == 1 {
				panic("flaky first attempt")
			}
		},
	})
	_, st := postJob(t, ts, `{"side": 4, "k": 4, "max_attempts": 3}`)
	final := waitTerminal(t, ts, st.ID)
	if final.State != JobDone {
		t.Fatalf("job ended %q (err %q), want done after retry", final.State, final.Error)
	}
	if final.Attempts != 2 {
		t.Errorf("attempts = %d, want 2", final.Attempts)
	}
	if s.retried.Value() != 1 {
		t.Errorf("retried counter = %d, want 1", s.retried.Value())
	}
}

// TestPerJobMaxAttemptsOverridesDefault: the spec's budget wins over the
// server's.
func TestPerJobMaxAttemptsOverridesDefault(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Workers:     1,
		MaxAttempts: 5,
		OnJobStart:  func(*Job) { panic("always fails") },
	})
	_, st := postJob(t, ts, `{"side": 4, "k": 4, "max_attempts": 2}`)
	final := waitTerminal(t, ts, st.ID)
	if final.State != JobFailed {
		t.Fatalf("job ended %q, want failed", final.State)
	}
	if final.Attempts != 2 {
		t.Errorf("attempts = %d, want the per-job budget of 2", final.Attempts)
	}
}

// TestTenantThrottling: a tenant over its bucket gets 429 + Retry-After;
// other tenants are unaffected.
func TestTenantThrottling(t *testing.T) {
	s, ts := newTestServer(t, Config{
		Workers:     1,
		QueueDepth:  16,
		TenantRate:  0.5, // one token every 2s: impossible to re-earn mid-test
		TenantBurst: 1,
	})
	if resp, _ := postJob(t, ts, `{"side": 4, "k": 4, "tenant": "acme"}`); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first acme POST = %d", resp.StatusCode)
	}
	resp, _ := postJob(t, ts, `{"side": 4, "k": 4, "tenant": "acme"}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second acme POST = %d, want 429", resp.StatusCode)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Errorf("throttled Retry-After = %q, want an integer >= 1", resp.Header.Get("Retry-After"))
	}
	if s.throttled.Value() != 1 {
		t.Errorf("throttled counter = %d, want 1", s.throttled.Value())
	}
	// A different tenant (set via header) is not throttled.
	req, _ := http.NewRequest("POST", ts.URL+"/v1/jobs", strings.NewReader(`{"side": 4, "k": 4}`))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Tenant", "zeta")
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusAccepted {
		t.Fatalf("zeta POST = %d, want 202", resp2.StatusCode)
	}
	var st jobStatus
	if err := json.NewDecoder(resp2.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Spec.Tenant != "zeta" {
		t.Errorf("X-Tenant header not adopted: spec tenant %q", st.Spec.Tenant)
	}
}

// TestDegradedMode: a WAL that stops accepting writes flips the server into
// degraded mode — admission 503, /readyz 503, gauge raised — without
// killing running work or reads.
func TestDegradedMode(t *testing.T) {
	wal := filepath.Join(t.TempDir(), "jobs.wal")
	s, ts := newTestServer(t, Config{Workers: 1, WALPath: wal})
	_, st := postJob(t, ts, `{"side": 4, "k": 4}`)
	waitTerminal(t, ts, st.ID)

	// Simulate the disk going away mid-flight.
	s.store.Close()
	resp, _ := postJob(t, ts, `{"side": 4, "k": 4}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("POST while degraded = %d, want 503", resp.StatusCode)
	}
	if !s.Degraded() {
		t.Fatal("server did not enter degraded mode")
	}
	rz, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	rz.Body.Close()
	if rz.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("/readyz while degraded = %d, want 503", rz.StatusCode)
	}
	// Reads still work: the finished job's status is served.
	if got := getStatus(t, ts, st.ID); got.State != JobDone {
		t.Errorf("degraded read returned %q", got.State)
	}
	// Liveness is NOT affected — degraded is an operator problem, not a
	// restart loop trigger.
	hz, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hz.Body.Close()
	if hz.StatusCode != http.StatusOK {
		t.Errorf("/healthz while degraded = %d, want 200", hz.StatusCode)
	}
}

// TestRecoveryFailsUnreadableSpec: a WAL record whose spec no longer parses
// fails the job visibly instead of guessing or dropping it.
func TestRecoveryFailsUnreadableSpec(t *testing.T) {
	wal := filepath.Join(t.TempDir(), "jobs.wal")
	writeWAL(t, wal,
		store.Record{Job: "j000001", Op: store.OpAccepted, Spec: json.RawMessage(`{"side": "not a number"}`)},
	)
	s, err := New(Config{WALPath: wal})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Kill()
	j, ok := s.Job("j000001")
	if !ok {
		t.Fatal("job dropped instead of failed")
	}
	if st := j.State(); st != JobFailed {
		t.Fatalf("unreadable-spec job recovered into %q, want failed", st)
	}
}

// TestRecoveryContinuesIDSequence: new admissions after a restart must not
// reuse recovered jobs' IDs.
func TestRecoveryContinuesIDSequence(t *testing.T) {
	wal := filepath.Join(t.TempDir(), "jobs.wal")
	spec, _ := json.Marshal(JobSpec{Side: 4, K: 8})
	writeWAL(t, wal,
		store.Record{Job: "j000007", Op: store.OpAccepted, Spec: spec},
		store.Record{Job: "j000007", Op: store.OpDone},
	)
	s, err := New(Config{WALPath: wal})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Kill()
	j, err := s.Submit(JobSpec{Side: 4, K: 8})
	if err != nil {
		t.Fatal(err)
	}
	if j.ID != "j000008" {
		t.Fatalf("post-recovery ID = %q, want j000008", j.ID)
	}
}
