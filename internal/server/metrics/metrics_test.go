package metrics

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	accepted := r.Counter("hotpotato_jobs_accepted_total", "Jobs accepted into the queue.")
	rejected := r.Counter("hotpotato_jobs_rejected_total", "Jobs rejected because the queue was full.")
	running := r.Gauge("hotpotato_jobs_running", "Jobs currently executing.")
	r.GaugeFunc("hotpotato_queue_depth", "Jobs waiting in the admission queue.", func() float64 { return 3 })
	lat, err := r.Histogram("hotpotato_step_latency_seconds", "Engine step latency.", 0, 0.001, 4)
	if err != nil {
		t.Fatal(err)
	}

	accepted.Add(7)
	rejected.Inc()
	running.Set(2)
	for _, v := range []float64{0.0001, 0.0003, 0.0003, 0.00099, 0.5} {
		lat.Observe(v)
	}

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "metrics.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("exposition differs from golden file:\n--- got ---\n%s--- want ---\n%s", buf.Bytes(), want)
	}
}

func TestHistogramCumulativeInvariant(t *testing.T) {
	r := NewRegistry()
	h, err := r.Histogram("h", "", 0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{-5, 0, 3, 7, 9.99, 10, 100} {
		h.Observe(v)
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// +Inf bucket equals the total count.
	if !strings.Contains(out, `h_bucket{le="+Inf"} 7`) || !strings.Contains(out, "h_count 7") {
		t.Errorf("cumulative +Inf bucket or count wrong:\n%s", out)
	}
	// Out-of-range-low lands in the first bucket.
	if !strings.Contains(out, `h_bucket{le="2"} 2`) {
		t.Errorf("under-range observation missing from first bucket:\n%s", out)
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup", "")
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	r.Counter("dup", "")
}

func TestConcurrentUpdatesAndScrapes(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c", "")
	g := r.Gauge("g", "")
	h, err := r.Histogram("h", "", 0, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				g.Set(float64(i))
				h.Observe(float64(i) / 1000)
				if i%100 == 0 {
					var buf bytes.Buffer
					if err := r.WritePrometheus(&buf); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Errorf("counter = %d, want 8000", c.Value())
	}
}
