// Package metrics is a minimal, stdlib-only metrics registry with
// Prometheus text-format exposition (the format any Prometheus-compatible
// scraper understands). It exists so hotpotatod can expose queue and
// engine counters without pulling a client library into a dependency-free
// module: counters and gauges are atomics, histograms wrap
// stats.Histogram behind a mutex, and WritePrometheus renders everything
// in sorted name order so the output is deterministic and testable
// against a golden file.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"hotpotato/internal/stats"
)

// Counter is a monotonically increasing metric.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0; counters only go up).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down. It stores a float64 as bits.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a concurrency-safe cumulative histogram over a
// stats.Histogram, rendered in the Prometheus bucket/sum/count form.
type Histogram struct {
	mu sync.Mutex
	h  *stats.Histogram
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	h.h.Add(v)
	h.mu.Unlock()
}

// snapshot copies the underlying state for rendering.
func (h *Histogram) snapshot() (bounds []float64, counts []int, under, over, n int, sum float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	bounds, counts = h.h.Buckets()
	return bounds, counts, h.h.Under(), h.h.Over(), h.h.N(), h.h.Sum()
}

// metric is one registered name: exactly one of the value fields is set.
type metric struct {
	name, help string
	counter    *Counter
	gauge      *Gauge
	gaugeFn    func() float64
	hist       *Histogram
}

func (m *metric) typ() string {
	switch {
	case m.counter != nil:
		return "counter"
	case m.hist != nil:
		return "histogram"
	default:
		return "gauge"
	}
}

// Registry holds named metrics and renders them. Registration is expected
// at setup time; rendering and metric updates are safe concurrently.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]*metric)}
}

// register adds m under its name, panicking on duplicates — a duplicate
// registration is a programming error worth failing fast on.
func (r *Registry) register(m *metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.metrics[m.name]; dup {
		panic(fmt.Sprintf("metrics: duplicate registration of %q", m.name))
	}
	r.metrics[m.name] = m
}

// Counter registers and returns a counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.register(&metric{name: name, help: help, counter: c})
	return c
}

// Gauge registers and returns a settable gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(&metric{name: name, help: help, gauge: g})
	return g
}

// GaugeFunc registers a gauge whose value is computed at scrape time (for
// values the owner already tracks, like queue depth).
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(&metric{name: name, help: help, gaugeFn: fn})
}

// Histogram registers and returns a histogram with `buckets` equal-width
// buckets over [lo, hi); observations outside the range land in the first
// and +Inf cumulative buckets respectively.
func (r *Registry) Histogram(name, help string, lo, hi float64, buckets int) (*Histogram, error) {
	sh, err := stats.NewHistogram(lo, hi, buckets)
	if err != nil {
		return nil, err
	}
	h := &Histogram{h: sh}
	r.register(&metric{name: name, help: help, hist: h})
	return h, nil
}

// fmtFloat renders a float the way Prometheus expects: integers without a
// decimal point, everything else in shortest form.
func fmtFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every registered metric in text exposition
// format, sorted by name.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.metrics))
	for name := range r.metrics {
		names = append(names, name)
	}
	ms := make([]*metric, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		ms = append(ms, r.metrics[name])
	}
	r.mu.Unlock()

	for _, m := range ms {
		if m.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", m.name, m.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", m.name, m.typ()); err != nil {
			return err
		}
		var err error
		switch {
		case m.counter != nil:
			_, err = fmt.Fprintf(w, "%s %d\n", m.name, m.counter.Value())
		case m.gauge != nil:
			_, err = fmt.Fprintf(w, "%s %s\n", m.name, fmtFloat(m.gauge.Value()))
		case m.gaugeFn != nil:
			_, err = fmt.Fprintf(w, "%s %s\n", m.name, fmtFloat(m.gaugeFn()))
		case m.hist != nil:
			err = writeHistogram(w, m.name, m.hist)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// writeHistogram renders the cumulative bucket series. Values below the
// range are ≤ every bound, so they seed the running total; values at or
// above the range count only toward +Inf.
func writeHistogram(w io.Writer, name string, h *Histogram) error {
	bounds, counts, under, over, n, sum := h.snapshot()
	cum := under
	for i, b := range bounds {
		cum += counts[i]
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, fmtFloat(b), cum); err != nil {
			return err
		}
	}
	cum += over
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum %s\n", name, fmtFloat(sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count %d\n", name, n)
	return err
}
