// Package server turns the simulation engine into a long-running service:
// cmd/hotpotatod's job queue, worker pool, streaming results and metrics
// all live here, behind a plain net/http handler.
//
// The lifecycle is: New validates the config, Start launches the worker
// pool, Handler serves the API, and Drain shuts down gracefully — admission
// stops, queued and running jobs finish or checkpoint (via
// internal/checkpoint), and the pool exits. Jobs execute under the
// internal/run supervisor, so a panicking policy or a hung attempt is
// contained the same way a sweep cell is.
//
// API surface:
//
//	POST /v1/jobs            submit a JobSpec; 202 + id, or 429 when the queue is full
//	GET  /v1/jobs            list job statuses
//	GET  /v1/jobs/{id}       one job's status
//	GET  /v1/jobs/{id}/stream NDJSON: per-epoch progress, then a final summary
//	GET  /metrics            Prometheus text exposition
//	GET  /healthz            liveness (always ok while the process serves)
//	GET  /readyz             readiness (503 once draining)
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"hotpotato/internal/checkpoint"
	"hotpotato/internal/run"
	"hotpotato/internal/server/metrics"
	"hotpotato/internal/sim"
)

// Config configures a Server. Zero values take the documented defaults.
type Config struct {
	// QueueDepth bounds the admission queue; a full queue answers 429 with
	// Retry-After (backpressure). Default 16.
	QueueDepth int
	// Workers is the number of jobs executed concurrently. Default 2.
	Workers int
	// JobTimeout bounds one job attempt's wall clock. It is enforced as the
	// engine's MaxWallTime, so a timed-out job stops between steps and
	// checkpoints like a drained one; a job stuck inside a single policy
	// call is abandoned by the supervisor at 2x this budget. 0 = unlimited.
	JobTimeout time.Duration
	// MaxAttempts caps attempts per job (retry on failure). Default 1.
	MaxAttempts int
	// CheckpointDir, when set, is where drained or timed-out jobs save
	// their engine state ("<dir>/<jobID>.hpck"). Empty disables
	// checkpointing: a drained job is then recorded as failed.
	CheckpointDir string
	// DrainGrace is how long Drain lets in-flight jobs run to natural
	// completion before cancelling them into checkpoints. Default 5s.
	DrainGrace time.Duration
	// MaxNodes and MaxK bound accepted specs (admission-time validation).
	// Defaults 1<<20.
	MaxNodes, MaxK int
	// Logf, when non-nil, receives one line per lifecycle event.
	Logf func(format string, args ...any)
	// OnJobStart, when non-nil, runs on the worker goroutine right before a
	// job executes. It exists for tests (it may block to hold a worker
	// busy); production configs leave it nil.
	OnJobStart func(*Job)
}

func (c Config) withDefaults() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 1
	}
	if c.DrainGrace <= 0 {
		c.DrainGrace = 5 * time.Second
	}
	if c.MaxNodes <= 0 {
		c.MaxNodes = 1 << 20
	}
	if c.MaxK <= 0 {
		c.MaxK = 1 << 20
	}
	return c
}

// Server is the simulation service: an admission queue feeding a worker
// pool, a job table, and the metrics registry.
type Server struct {
	cfg Config

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string
	nextID   int64
	draining bool
	queue    chan *Job

	// jobCtx is cancelled when drain wants running engines to stop (after
	// the grace period); its cancellation makes every engine checkpoint.
	jobCtx  context.Context
	stopJob context.CancelFunc
	wg      sync.WaitGroup
	started atomic.Bool

	reg          *metrics.Registry
	accepted     *metrics.Counter
	rejected     *metrics.Counter
	completed    *metrics.Counter
	failed       *metrics.Counter
	checkpointed *metrics.Counter
	stepsTotal   *metrics.Counter
	runningCount atomic.Int64
	stepLatency  *metrics.Histogram
	stepsPerSec  *metrics.Histogram
}

// New builds a server (workers not yet running; call Start).
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	jobCtx, stopJob := context.WithCancel(context.Background())
	s := &Server{
		cfg:     cfg,
		jobs:    make(map[string]*Job),
		queue:   make(chan *Job, cfg.QueueDepth),
		jobCtx:  jobCtx,
		stopJob: stopJob,
		reg:     metrics.NewRegistry(),
	}
	s.accepted = s.reg.Counter("hotpotatod_jobs_accepted_total", "Jobs admitted into the queue.")
	s.rejected = s.reg.Counter("hotpotatod_jobs_rejected_total", "Jobs rejected with 429 because the queue was full.")
	s.completed = s.reg.Counter("hotpotatod_jobs_completed_total", "Jobs that ran to their natural end.")
	s.failed = s.reg.Counter("hotpotatod_jobs_failed_total", "Jobs whose every attempt errored.")
	s.checkpointed = s.reg.Counter("hotpotatod_jobs_checkpointed_total", "Jobs stopped early with their state saved.")
	s.stepsTotal = s.reg.Counter("hotpotatod_engine_steps_total", "Engine steps executed across all jobs.")
	s.reg.GaugeFunc("hotpotatod_jobs_running", "Jobs currently executing.", func() float64 {
		return float64(s.runningCount.Load())
	})
	s.reg.GaugeFunc("hotpotatod_queue_depth", "Jobs waiting in the admission queue.", func() float64 {
		return float64(len(s.queue))
	})
	s.reg.GaugeFunc("hotpotatod_queue_capacity", "Admission queue capacity.", func() float64 {
		return float64(cfg.QueueDepth)
	})
	var err error
	s.stepLatency, err = s.reg.Histogram("hotpotatod_step_latency_seconds",
		"Wall-clock latency of one engine step.", 0, 0.005, 50)
	if err != nil {
		return nil, err
	}
	s.stepsPerSec, err = s.reg.Histogram("hotpotatod_job_steps_per_second",
		"Per-job engine throughput at completion.", 0, 2e6, 40)
	if err != nil {
		return nil, err
	}
	return s, nil
}

// Start launches the worker pool. It may be called once.
func (s *Server) Start() {
	if !s.started.CompareAndSwap(false, true) {
		return
	}
	for i := 0; i < s.cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	s.logf("serving with %d workers, queue depth %d", s.cfg.Workers, s.cfg.QueueDepth)
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// Drain shuts the service down gracefully: admission stops (readyz goes
// 503, POST answers 503), in-flight and queued jobs get DrainGrace to
// finish naturally, then running engines are cancelled so they checkpoint,
// and the worker pool exits. The context bounds the whole wait; on
// expiry Drain returns its error with workers still draining.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return errors.New("server: already draining")
	}
	s.draining = true
	close(s.queue) // admission is refused before enqueue once draining is set
	s.mu.Unlock()
	s.logf("draining: admission stopped, %d queued, %d running", len(s.queue), s.runningCount.Load())

	// Give jobs the grace period to finish on their own, then cancel the
	// stragglers into checkpoints.
	grace := time.AfterFunc(s.cfg.DrainGrace, s.stopJob)
	defer grace.Stop()
	defer s.stopJob()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.logf("drained: all workers exited")
		return nil
	case <-ctx.Done():
		s.stopJob() // too late for grace; force the checkpoints now
		select {
		case <-done:
			return nil
		case <-time.After(2 * time.Second):
			return fmt.Errorf("server: drain cut short: %w", context.Cause(ctx))
		}
	}
}

// Draining reports whether admission has stopped.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Job looks up a job by ID.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Submit validates and admits a job, returning the created Job or an
// admission error: errDraining when the server no longer accepts work,
// errQueueFull for backpressure, or a spec validation error.
var (
	errDraining  = errors.New("server is draining; not accepting jobs")
	errQueueFull = errors.New("admission queue is full; retry later")
)

func (s *Server) Submit(js JobSpec) (*Job, error) {
	js = js.withDefaults()
	if err := js.validate(s.cfg.MaxNodes, s.cfg.MaxK); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, errDraining
	}
	s.nextID++
	j := newJob(jobID(s.nextID), js)
	select {
	case s.queue <- j:
	default:
		s.nextID-- // not admitted; reuse the sequence number
		s.rejected.Inc()
		return nil, errQueueFull
	}
	s.jobs[j.ID] = j
	s.order = append(s.order, j.ID)
	s.accepted.Inc()
	return j, nil
}

// worker executes jobs until the queue is closed and empty.
func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		if s.cfg.OnJobStart != nil {
			s.cfg.OnJobStart(j)
		}
		s.execute(j)
	}
}

// jobOutcome is the payload a successful supervised attempt returns: the
// run summary plus how the run ended.
type jobOutcome struct {
	Result       *sim.Result `json:"result"`
	Steps        int         `json:"steps"`
	Checkpointed bool        `json:"checkpointed"`
	Checkpoint   string      `json:"checkpoint,omitempty"`
	Canceled     bool        `json:"canceled"`
	TimedOut     bool        `json:"timed_out"`
}

// execute runs one job under the internal/run supervisor and moves it to
// its terminal state.
func (s *Server) execute(j *Job) {
	s.runningCount.Add(1)
	defer s.runningCount.Add(-1)

	attempt := 0
	cell := run.Cell{
		Key: j.ID,
		Work: func(actx context.Context) (json.RawMessage, error) {
			attempt++
			j.setRunning(attempt)
			return s.runJob(actx, j, attempt)
		},
	}
	opts := run.Options{
		MaxAttempts: s.cfg.MaxAttempts,
		Seed:        j.Spec.Seed,
	}
	if s.cfg.JobTimeout > 0 {
		// The engine's MaxWallTime (set in runJob) is the graceful bound;
		// the supervisor's attempt timeout is the backstop for a job stuck
		// inside a single policy call.
		opts.CellTimeout = 2 * s.cfg.JobTimeout
	}
	res := run.Single(s.jobCtx, cell, opts)

	if res.Status != run.StatusOK {
		s.failed.Inc()
		j.finish(JobFailed, nil, res.Err)
		s.publishSummary(j)
		s.logf("job %s failed after %d attempt(s): %s", j.ID, res.Attempts, res.Err)
		return
	}
	var out jobOutcome
	if err := json.Unmarshal(res.Result, &out); err != nil {
		s.failed.Inc()
		j.finish(JobFailed, nil, "corrupt job payload: "+err.Error())
		s.publishSummary(j)
		return
	}
	switch {
	case out.Checkpointed:
		s.checkpointed.Inc()
		j.setCheckpoint(out.Checkpoint)
		reason := "drained"
		if out.TimedOut {
			reason = "timed out"
		}
		j.finish(JobCheckpointed, out.Result, "")
		s.publishSummary(j)
		s.logf("job %s checkpointed (%s) at step %d -> %s", j.ID, reason, out.Steps, out.Checkpoint)
	case out.Canceled || out.TimedOut:
		// Stopped early with nowhere to save state.
		s.failed.Inc()
		reason := "canceled at drain"
		if out.TimedOut {
			reason = "job timeout exceeded"
		}
		j.finish(JobFailed, out.Result, reason+" (no checkpoint dir configured)")
		s.publishSummary(j)
	default:
		s.completed.Inc()
		j.finish(JobDone, out.Result, "")
		s.publishSummary(j)
		s.logf("job %s done: %d/%d delivered in %d steps",
			j.ID, out.Result.Delivered, out.Result.Total, out.Result.Steps)
	}
}

// runJob is one supervised attempt: build the engine, wire observers,
// run until completion, drain-cancel, or deadline.
func (s *Server) runJob(actx context.Context, j *Job, attempt int) (json.RawMessage, error) {
	e, err := j.Spec.buildEngine(s.cfg.JobTimeout)
	if err != nil {
		return nil, err
	}
	defer e.Close()

	// The run stops on whichever fires first: the attempt's backstop
	// deadline (actx), or drain deciding that running jobs must checkpoint.
	ctx, cancel := context.WithCancel(actx)
	defer cancel()
	stop := context.AfterFunc(s.jobCtx, cancel)
	defer stop()

	// Progress epochs: publish to stream followers, update status and the
	// shared step counters. Step latency is sampled per step.
	last := time.Now()
	e.AddObserver(sim.ObserverFunc(func(*sim.StepRecord) {
		now := time.Now()
		s.stepLatency.Observe(now.Sub(last).Seconds())
		last = now
		s.stepsTotal.Inc()
	}))
	e.AddObserver(sim.NewProgressSampler(e, j.Spec.ProgressEvery, func(p sim.Progress) {
		j.setProgress(p)
		s.publishProgress(j, attempt, p)
	}))
	if d := time.Duration(j.Spec.StepDelay); d > 0 {
		e.AddObserver(sim.ObserverFunc(func(*sim.StepRecord) { time.Sleep(d) }))
	}

	// Checkpoint sink: only used when the run stops early (every=0).
	saved := ""
	var save func(*sim.Snapshot) error
	if s.cfg.CheckpointDir != "" {
		path := filepath.Join(s.cfg.CheckpointDir, j.ID+".hpck")
		save = func(snap *sim.Snapshot) error {
			if err := checkpoint.Save(path, snap, checkpoint.Binary); err != nil {
				return err
			}
			saved = path
			return nil
		}
	}

	started := time.Now()
	res, runErr := e.RunCheckpointed(ctx, 0, save)
	if runErr != nil && !errors.Is(runErr, context.Canceled) {
		return nil, runErr // validation failure, policy panic, checkpoint I/O
	}
	elapsed := time.Since(started)

	final := e.Progress()
	j.setProgress(final)
	s.publishProgress(j, attempt, final)
	if elapsed > 0 && final.Time > 0 {
		s.stepsPerSec.Observe(float64(final.Time) / elapsed.Seconds())
	}

	out := jobOutcome{Result: res, Steps: final.Time}
	switch {
	case runErr != nil: // context.Canceled: drain or backstop
		out.Canceled = true
		if save != nil && saved == "" {
			// Cancelled before the first step: RunCheckpointed had no
			// unsaved progress to flush, but the initial state is still
			// worth keeping — it is the job itself.
			snap, err := e.Snapshot()
			if err != nil {
				return nil, err
			}
			if err := save(snap); err != nil {
				return nil, err
			}
		}
	case res.DeadlineExceeded:
		out.TimedOut = true
	}
	out.Checkpointed = saved != "" && (out.Canceled || out.TimedOut)
	out.Checkpoint = saved
	return json.Marshal(out)
}

// publishProgress emits one NDJSON progress event.
func (s *Server) publishProgress(j *Job, attempt int, p sim.Progress) {
	line, err := json.Marshal(struct {
		Type    string `json:"type"`
		JobID   string `json:"job_id"`
		Attempt int    `json:"attempt"`
		sim.Progress
	}{"progress", j.ID, attempt, p})
	if err != nil {
		return
	}
	j.publish(line)
}

// publishSummary emits the final NDJSON event after the job reached its
// terminal state.
func (s *Server) publishSummary(j *Job) {
	st := j.status()
	line, err := json.Marshal(struct {
		Type       string      `json:"type"`
		JobID      string      `json:"job_id"`
		State      JobState    `json:"state"`
		Result     *sim.Result `json:"result,omitempty"`
		Error      string      `json:"error,omitempty"`
		Checkpoint string      `json:"checkpoint,omitempty"`
	}{"summary", j.ID, st.State, st.Result, st.Error, st.Checkpoint})
	if err != nil {
		return
	}
	j.publishFinal(line)
}

// Handler returns the service's HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/stream", s.handleStream)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if s.Draining() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ready")
	})
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // the connection owns delivery
}

type apiError struct {
	Error string `json:"error"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var js JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&js); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{"bad job spec: " + err.Error()})
		return
	}
	j, err := s.Submit(js)
	switch {
	case errors.Is(err, errQueueFull):
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, apiError{err.Error()})
		return
	case errors.Is(err, errDraining):
		writeJSON(w, http.StatusServiceUnavailable, apiError{err.Error()})
		return
	case err != nil:
		writeJSON(w, http.StatusBadRequest, apiError{err.Error()})
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+j.ID)
	writeJSON(w, http.StatusAccepted, j.status())
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	jobs := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()
	out := make([]jobStatus, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.status())
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{"no such job"})
		return
	}
	writeJSON(w, http.StatusOK, j.status())
}

// handleStream serves the job's NDJSON event stream: everything emitted so
// far is replayed, then the connection follows live until the job reaches
// a terminal state (the final summary line) or the client goes away.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{"no such job"})
		return
	}
	fl, canFlush := w.(http.Flusher)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	if canFlush {
		fl.Flush()
	}
	i := 0
	for {
		lines, done, changed := j.eventsFrom(i)
		for _, line := range lines {
			if _, err := w.Write(append(line, '\n')); err != nil {
				return
			}
		}
		i += len(lines)
		if len(lines) > 0 && canFlush {
			fl.Flush()
		}
		if done {
			// The summary was in this batch (or an earlier one): the
			// stream is complete.
			return
		}
		select {
		case <-changed:
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.reg.WritePrometheus(w) //nolint:errcheck // the connection owns delivery
}

// Metrics exposes the registry (the daemon adds process-level gauges).
func (s *Server) Metrics() *metrics.Registry { return s.reg }
