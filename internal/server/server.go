// Package server turns the simulation engine into a long-running service:
// cmd/hotpotatod's job queue, worker pool, streaming results and metrics
// all live here, behind a plain net/http handler.
//
// The lifecycle is: New validates the config (and, when a WAL path is set,
// replays the durable job store), Start launches the worker pool, Handler
// serves the API, and Drain shuts down gracefully — admission stops, queued
// and running jobs finish or checkpoint (via internal/checkpoint), and the
// pool exits. Jobs execute under the internal/run supervisor, so a
// panicking policy or a hung attempt is contained the same way a sweep
// cell is.
//
// Durability (Config.WALPath): every lifecycle transition is fsynced into
// an internal/server/store WAL before the client observes it, so a crashed
// daemon — kill -9 included — restarts with every accepted job either
// finished (its recorded fate is replayed into the job table) or
// re-enqueued, resuming from its last periodic checkpoint when one exists.
// A job that repeatedly takes the daemon down with it is quarantined
// rather than recovered again, and a WAL that stops accepting writes (disk
// full, yanked volume) flips the server into degraded mode: /readyz turns
// 503 and admission stops, but running jobs finish and reads keep working.
//
// API surface:
//
//	POST /v1/jobs            submit a JobSpec; 202 + id, or 429 when the queue is full
//	                         or the tenant is over its admission quota
//	GET  /v1/jobs            list job statuses
//	GET  /v1/jobs/{id}       one job's status
//	GET  /v1/jobs/{id}/stream NDJSON: per-epoch progress, then a final summary
//	GET  /metrics            Prometheus text exposition
//	GET  /healthz            liveness (always ok while the process serves)
//	GET  /readyz             readiness (503 once draining or degraded)
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hotpotato/internal/checkpoint"
	"hotpotato/internal/rng"
	"hotpotato/internal/run"
	"hotpotato/internal/server/metrics"
	"hotpotato/internal/server/store"
	"hotpotato/internal/shard"
	"hotpotato/internal/sim"
	"hotpotato/internal/spec"
)

// Config configures a Server. Zero values take the documented defaults.
type Config struct {
	// QueueDepth bounds the admission queue; a full queue answers 429 with
	// Retry-After (backpressure). Default 16.
	QueueDepth int
	// Workers is the number of jobs executed concurrently. Default 2.
	Workers int
	// JobTimeout bounds one job attempt's wall clock. It is enforced as the
	// engine's MaxWallTime, so a timed-out job stops between steps and
	// checkpoints like a drained one; a job stuck inside a single policy
	// call is abandoned by the supervisor at 2x this budget. 0 = unlimited.
	JobTimeout time.Duration
	// MaxAttempts caps attempts per job (retry on failure). Default 1.
	MaxAttempts int
	// CheckpointDir, when set, is where drained or timed-out jobs save
	// their engine state ("<dir>/<jobID>.hpck"). Empty disables
	// checkpointing: a drained job is then recorded as failed.
	CheckpointDir string
	// CheckpointEvery, when > 0 (and CheckpointDir is set), additionally
	// checkpoints every running job each N engine steps, so a hard crash
	// resumes jobs from their last checkpoint instead of from scratch.
	// 0 keeps the save-on-stop-only behavior.
	CheckpointEvery int
	// WALPath, when set, makes the job store durable: every lifecycle
	// transition is fsynced into this write-ahead log before the client
	// observes it, and New replays the log — re-enqueueing unfinished
	// jobs — when a server is built over an existing file.
	WALPath string
	// TenantRate and TenantBurst configure per-tenant token-bucket
	// admission: each tenant accrues TenantRate job tokens per second up
	// to TenantBurst, and an empty bucket answers 429 with the exact
	// Retry-After. Rate 0 (the default) disables per-tenant limiting.
	TenantRate  float64
	TenantBurst int
	// QuarantineAfter is the poison-job threshold: a job whose executions
	// have started this many times without ever finishing — panicking
	// attempts in one daemon life, or runs cut short by daemon crashes
	// across lives — is quarantined instead of retried or recovered.
	// Default 3; negative disables quarantine.
	QuarantineAfter int
	// DrainGrace is how long Drain lets in-flight jobs run to natural
	// completion before cancelling them into checkpoints. Default 5s.
	DrainGrace time.Duration
	// MaxNodes and MaxK bound accepted specs (admission-time validation).
	// Defaults 1<<20.
	MaxNodes, MaxK int
	// Logf, when non-nil, receives one line per lifecycle event.
	Logf func(format string, args ...any)
	// OnJobStart, when non-nil, runs inside the supervised attempt right
	// before a job executes. It exists for tests: it may block to hold a
	// worker busy, or panic to simulate a poison job (the supervisor
	// contains it like any attempt panic). Production configs leave it nil.
	OnJobStart func(*Job)
}

func (c Config) withDefaults() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 1
	}
	if c.DrainGrace <= 0 {
		c.DrainGrace = 5 * time.Second
	}
	if c.MaxNodes <= 0 {
		c.MaxNodes = 1 << 20
	}
	if c.MaxK <= 0 {
		c.MaxK = 1 << 20
	}
	if c.QuarantineAfter == 0 {
		c.QuarantineAfter = 3
	}
	return c
}

// Server is the simulation service: an admission queue feeding a worker
// pool, a job table, and the metrics registry.
type Server struct {
	cfg Config

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string
	nextID   int64
	draining bool
	queue    chan *Job

	// jobCtx is cancelled when drain wants running engines to stop (after
	// the grace period); its cancellation makes every engine checkpoint.
	jobCtx  context.Context
	stopJob context.CancelFunc
	wg      sync.WaitGroup
	started atomic.Bool

	// store is the durable job WAL (nil without Config.WALPath); degraded
	// flips when a WAL write fails and never unflips — operators restart
	// the daemon once the disk is healthy, and recovery does the rest.
	store    *store.Store
	tenants  *tenantLimiter
	degraded atomic.Bool

	reg          *metrics.Registry
	accepted     *metrics.Counter
	rejected     *metrics.Counter
	throttled    *metrics.Counter
	completed    *metrics.Counter
	failed       *metrics.Counter
	checkpointed *metrics.Counter
	quarantined  *metrics.Counter
	recovered    *metrics.Counter
	retried      *metrics.Counter
	stepsTotal   *metrics.Counter
	runningCount atomic.Int64
	stepLatency  *metrics.Histogram
	stepsPerSec  *metrics.Histogram
	walFsync     *metrics.Histogram
}

// New builds a server (workers not yet running; call Start). With
// Config.WALPath set it also replays the job store: finished jobs become
// visible history, unfinished ones are re-enqueued ahead of new admissions.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	jobCtx, stopJob := context.WithCancel(context.Background())
	s := &Server{
		cfg:     cfg,
		jobs:    make(map[string]*Job),
		jobCtx:  jobCtx,
		stopJob: stopJob,
		tenants: newTenantLimiter(cfg.TenantRate, cfg.TenantBurst),
		reg:     metrics.NewRegistry(),
	}
	s.accepted = s.reg.Counter("hotpotatod_jobs_accepted_total", "Jobs admitted into the queue.")
	s.rejected = s.reg.Counter("hotpotatod_jobs_rejected_total", "Jobs rejected with 429 because the queue was full.")
	s.throttled = s.reg.Counter("hotpotatod_tenant_throttled_total", "Jobs rejected with 429 by per-tenant token-bucket admission.")
	s.completed = s.reg.Counter("hotpotatod_jobs_completed_total", "Jobs that ran to their natural end.")
	s.failed = s.reg.Counter("hotpotatod_jobs_failed_total", "Jobs whose every attempt errored.")
	s.checkpointed = s.reg.Counter("hotpotatod_jobs_checkpointed_total", "Jobs stopped early with their state saved.")
	s.quarantined = s.reg.Counter("hotpotatod_jobs_quarantined_total", "Poison jobs hard-stopped after repeated panics or crash-interrupted runs.")
	s.recovered = s.reg.Counter("hotpotatod_jobs_recovered_total", "Unfinished jobs re-enqueued from the WAL at startup.")
	s.retried = s.reg.Counter("hotpotatod_job_retries_total", "Execution attempts beyond each job's first.")
	s.stepsTotal = s.reg.Counter("hotpotatod_engine_steps_total", "Engine steps executed across all jobs.")
	s.reg.GaugeFunc("hotpotatod_jobs_running", "Jobs currently executing.", func() float64 {
		return float64(s.runningCount.Load())
	})
	s.reg.GaugeFunc("hotpotatod_queue_depth", "Jobs waiting in the admission queue.", func() float64 {
		return float64(len(s.queue))
	})
	s.reg.GaugeFunc("hotpotatod_queue_capacity", "Admission queue capacity.", func() float64 {
		return float64(cfg.QueueDepth)
	})
	s.reg.GaugeFunc("hotpotatod_degraded", "1 when WAL writes fail and admission is stopped.", func() float64 {
		if s.degraded.Load() {
			return 1
		}
		return 0
	})
	var err error
	s.stepLatency, err = s.reg.Histogram("hotpotatod_step_latency_seconds",
		"Wall-clock latency of one engine step.", 0, 0.005, 50)
	if err != nil {
		return nil, err
	}
	s.stepsPerSec, err = s.reg.Histogram("hotpotatod_job_steps_per_second",
		"Per-job engine throughput at completion.", 0, 2e6, 40)
	if err != nil {
		return nil, err
	}
	s.walFsync, err = s.reg.Histogram("hotpotatod_wal_fsync_seconds",
		"Latency of one WAL append+fsync.", 0, 0.02, 40)
	if err != nil {
		return nil, err
	}

	var rec *store.Recovery
	if cfg.WALPath != "" {
		s.store, rec, err = store.Open(cfg.WALPath)
		if err != nil {
			return nil, fmt.Errorf("server: job store: %w", err)
		}
	}
	// Recovered pending jobs ride in queue slots beyond QueueDepth, so a
	// restart never deadlocks on its own backlog and new admissions still
	// see the configured depth of headroom.
	pending := 0
	if rec != nil {
		pending = len(rec.Pending())
	}
	s.queue = make(chan *Job, cfg.QueueDepth+pending)
	if rec != nil {
		s.adoptRecovery(rec)
	}
	return s, nil
}

// parseJobID extracts the sequence number from a "j000042"-style ID.
func parseJobID(id string) (int64, bool) {
	if !strings.HasPrefix(id, "j") {
		return 0, false
	}
	n, err := strconv.ParseInt(id[1:], 10, 64)
	return n, err == nil && n > 0
}

// adoptRecovery rebuilds the job table from a replayed WAL: jobs with a
// recorded terminal fate become visible history, unfinished jobs are
// re-enqueued (resuming from their last on-disk checkpoint when one
// exists), and a job that has already started QuarantineAfter times
// without ever finishing — the signature of a poison job that keeps
// killing its host — is quarantined instead of being given another chance.
// Called from New, before workers or handlers exist, so no locking.
func (s *Server) adoptRecovery(rec *store.Recovery) {
	if rec.Truncated > 0 {
		s.logf("wal: repaired torn tail (%d bytes chopped)", rec.Truncated)
	}
	requeued := 0
	for _, jr := range rec.Jobs {
		if n, ok := parseJobID(jr.ID); ok && n > s.nextID {
			s.nextID = n // new admissions continue the ID sequence
		}
		var js JobSpec
		specErr := json.Unmarshal(jr.Spec, &js)
		js = js.withDefaults() // WAL specs are normalized, but defend anyway
		j := newJob(jr.ID, js)
		j.recovered = true
		j.priorStarts = jr.Starts
		s.jobs[jr.ID] = j
		s.order = append(s.order, jr.ID)
		switch {
		case specErr != nil:
			// Valid CRC but unreadable spec: fail it rather than guess.
			j.finish(JobFailed, nil, "unreadable spec in WAL: "+specErr.Error())
			s.publishSummary(j)
			s.walAppend(store.Record{Job: j.ID, Op: store.OpFailed, Error: "unreadable spec in WAL"})
		case !jr.Pending():
			s.adoptTerminal(j, jr)
		case s.cfg.QuarantineAfter > 0 && jr.Starts >= s.cfg.QuarantineAfter:
			msg := fmt.Sprintf("quarantined at recovery: %d interrupted run(s) without finishing", jr.Starts)
			s.quarantined.Inc()
			j.finish(JobQuarantined, nil, msg)
			s.publishSummary(j)
			s.walAppend(store.Record{Job: j.ID, Op: store.OpQuarantined, Error: msg})
			s.logf("job %s QUARANTINED at recovery (%d prior start(s))", j.ID, jr.Starts)
		default:
			if s.cfg.CheckpointDir != "" {
				if j.Spec.Shards != "" {
					dir := filepath.Join(s.cfg.CheckpointDir, j.ID+".shards")
					if shard.HasCheckpoint(dir) {
						j.Spec.ResumeFrom = dir
					}
				} else {
					path := filepath.Join(s.cfg.CheckpointDir, j.ID+".hpck")
					if _, err := os.Stat(path); err == nil {
						j.Spec.ResumeFrom = path
					}
				}
			}
			s.recovered.Inc()
			requeued++
			s.queue <- j
			resume := "from scratch"
			if j.Spec.ResumeFrom != "" {
				resume = "resuming " + j.Spec.ResumeFrom
			}
			s.logf("recovered job %s (tenant %q, %d prior start(s), %s)", j.ID, jr.Tenant, jr.Starts, resume)
		}
	}
	if len(rec.Jobs) > 0 {
		s.logf("wal replay: %d job(s), %d re-enqueued", len(rec.Jobs), requeued)
	}
}

// adoptTerminal replays a finished job's recorded fate into the job table.
func (s *Server) adoptTerminal(j *Job, jr *store.JobRecord) {
	var res *sim.Result
	if len(jr.Result) > 0 {
		res = &sim.Result{}
		if json.Unmarshal(jr.Result, res) != nil {
			res = nil
		}
	}
	switch jr.Op {
	case store.OpDone:
		j.setFinalHash(jr.FinalHash)
		j.finish(JobDone, res, "")
	case store.OpFailed:
		j.finish(JobFailed, res, jr.Error)
	case store.OpCheckpointed:
		j.setCheckpoint(jr.Checkpoint)
		j.finish(JobCheckpointed, res, "")
	case store.OpQuarantined:
		j.finish(JobQuarantined, nil, jr.Error)
	}
	s.publishSummary(j)
}

// walAppend records one lifecycle transition in the WAL, timing the
// append+fsync. A write failure flips the server into degraded mode —
// admission stops and /readyz turns 503 — instead of crashing; running
// jobs keep going (their fates will be reconciled by recovery or rerun).
func (s *Server) walAppend(rec store.Record) error {
	if s.store == nil {
		return nil
	}
	t0 := time.Now()
	err := s.store.Append(rec)
	s.walFsync.Observe(time.Since(t0).Seconds())
	if err != nil {
		s.degrade(err)
	}
	return err
}

// degrade enters degraded mode (idempotent).
func (s *Server) degrade(err error) {
	if s.degraded.CompareAndSwap(false, true) {
		s.logf("DEGRADED: %v — admission stopped, /readyz answers 503", err)
	}
}

// Degraded reports whether a WAL write has failed.
func (s *Server) Degraded() bool { return s.degraded.Load() }

// Start launches the worker pool. It may be called once.
func (s *Server) Start() {
	if !s.started.CompareAndSwap(false, true) {
		return
	}
	for i := 0; i < s.cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	s.logf("serving with %d workers, queue depth %d", s.cfg.Workers, s.cfg.QueueDepth)
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// Drain shuts the service down gracefully: admission stops (readyz goes
// 503, POST answers 503), in-flight and queued jobs get DrainGrace to
// finish naturally, then running engines are cancelled so they checkpoint,
// and the worker pool exits. The context bounds the whole wait; on
// expiry Drain returns its error with workers still draining.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return errors.New("server: already draining")
	}
	s.draining = true
	close(s.queue) // admission is refused before enqueue once draining is set
	s.mu.Unlock()
	s.logf("draining: admission stopped, %d queued, %d running", len(s.queue), s.runningCount.Load())

	// Give jobs the grace period to finish on their own, then cancel the
	// stragglers into checkpoints.
	grace := time.AfterFunc(s.cfg.DrainGrace, s.stopJob)
	defer grace.Stop()
	defer s.stopJob()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.logf("drained: all workers exited")
		s.closeStore()
		return nil
	case <-ctx.Done():
		s.stopJob() // too late for grace; force the checkpoints now
		select {
		case <-done:
			s.closeStore()
			return nil
		case <-time.After(2 * time.Second):
			return fmt.Errorf("server: drain cut short: %w", context.Cause(ctx))
		}
	}
}

// closeStore releases the WAL after every writer has exited.
func (s *Server) closeStore() {
	if s.store != nil {
		if err := s.store.Close(); err != nil {
			s.logf("wal close: %v", err)
		}
	}
}

// Kill simulates a hard crash (the in-process analogue of kill -9) for the
// chaos harness: the WAL is closed FIRST — so in-flight lifecycle
// transitions are lost, exactly like dirty pages a real crash never flushed
// — then running jobs are cancelled and the pool is torn down. No draining,
// no grace, no checkpoint-on-cancel guarantees beyond what periodic
// checkpointing already put on disk. The Server is unusable afterwards;
// recovery means building a new one over the same WALPath.
func (s *Server) Kill() {
	s.mu.Lock()
	alreadyDraining := s.draining
	s.draining = true
	s.mu.Unlock()
	if s.store != nil {
		s.store.Close() //nolint:errcheck // crashing; later appends fail loudly
	}
	s.stopJob()
	if !alreadyDraining {
		s.mu.Lock()
		close(s.queue)
		s.mu.Unlock()
	}
	s.wg.Wait()
}

// Draining reports whether admission has stopped.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Job looks up a job by ID.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Submit validates and admits a job, returning the created Job or an
// admission error: errDraining when the server no longer accepts work,
// errDegraded when the WAL stopped taking writes, errQueueFull for
// backpressure, a *throttleError when the tenant is over quota, or a spec
// validation error.
var (
	errDraining  = errors.New("server is draining; not accepting jobs")
	errDegraded  = errors.New("server is degraded (job store unwritable); not accepting jobs")
	errQueueFull = errors.New("admission queue is full; retry later")
)

// throttleError is per-tenant backpressure: retry after wait.
type throttleError struct {
	tenant string
	wait   time.Duration
}

func (e *throttleError) Error() string {
	return fmt.Sprintf("tenant %q is over its admission quota; retry in %s", e.tenant, e.wait.Round(time.Millisecond))
}

// tenantOf normalizes the accounting identity of a spec.
func tenantOf(js JobSpec) string {
	if js.Tenant == "" {
		return "default"
	}
	return js.Tenant
}

func (s *Server) Submit(js JobSpec) (*Job, error) {
	js = js.withDefaults()
	if err := js.validate(s.cfg.MaxNodes, s.cfg.MaxK); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, errDraining
	}
	if s.degraded.Load() {
		return nil, errDegraded
	}
	// Capacity is checked before any state is touched: Submit is the only
	// enqueuer and it holds mu, so a free slot seen here cannot be taken
	// away before the send below.
	if len(s.queue) == cap(s.queue) {
		s.rejected.Inc()
		return nil, errQueueFull
	}
	tenant := tenantOf(js)
	if ok, wait := s.tenants.take(tenant, time.Now()); !ok {
		s.throttled.Inc()
		return nil, &throttleError{tenant: tenant, wait: wait}
	}
	s.nextID++
	j := newJob(jobID(s.nextID), js)
	// Durability before visibility: the accepted record must be on stable
	// storage before the client can learn the job ID — from here on, no
	// crash loses the job.
	if s.store != nil {
		spec, err := json.Marshal(js)
		if err == nil {
			err = s.walAppend(store.Record{Job: j.ID, Op: store.OpAccepted, Tenant: tenant, Spec: spec})
		}
		if err != nil {
			s.nextID--
			return nil, errDegraded
		}
	}
	s.queue <- j
	s.jobs[j.ID] = j
	s.order = append(s.order, j.ID)
	s.accepted.Inc()
	return j, nil
}

// worker executes jobs until the queue is closed and empty.
func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.execute(j)
	}
}

// jobOutcome is the payload a successful supervised attempt returns: the
// run summary plus how the run ended.
type jobOutcome struct {
	Result       *sim.Result `json:"result"`
	Steps        int         `json:"steps"`
	Checkpointed bool        `json:"checkpointed"`
	Checkpoint   string      `json:"checkpoint,omitempty"`
	Canceled     bool        `json:"canceled"`
	TimedOut     bool        `json:"timed_out"`
	// FinalHash fingerprints the engine state of a naturally finished run
	// (see resultFingerprint); 0 for interrupted runs.
	FinalHash uint64 `json:"final_hash,omitempty"`
}

// resultFingerprint condenses a finished run into one comparable word: the
// engine's live-configuration hash folded with the movement counters. Two
// runs of the same spec report equal fingerprints iff they ended in
// bit-identical engine states having done identical work — which is how
// the chaos harness proves a crash-recovered run matches an uninterrupted
// one. Both sim.Engine and shard.Engine satisfy the parameter (and hash
// equal states equally, which is the sharded engine's parity contract).
func resultFingerprint(e interface{ StateHash() uint64 }, p sim.Progress) uint64 {
	return uint64(rng.Mix(int64(e.StateHash()), int64(p.Time), int64(p.Delivered),
		int64(p.Dropped), int64(p.Absorbed), p.TotalHops, p.TotalDeflections, int64(p.MaxNodeLoad)))
}

// isPanicErr recognizes the supervisor's panic-recovery error text.
func isPanicErr(err string) bool { return strings.Contains(err, "panic: ") }

// walErr truncates failure text for the WAL — panic errors carry whole
// stack traces, and the log keeps a line per transition, not a core dump.
func walErr(err string) string {
	if i := strings.IndexByte(err, '\n'); i >= 0 {
		err = err[:i]
	}
	if len(err) > 512 {
		err = err[:512] + "..."
	}
	return err
}

// maxAttempts resolves one job's retry budget: the spec's own budget when
// set, else the server default. QuarantineAfter is a hard ceiling on total
// starts — attempts this life plus crash-interrupted runs from earlier
// lives — so the budget is clamped to the starts remaining before the
// quarantine threshold; a poison job never gets extra chances to take the
// process down just because its retry budget is generous.
func (s *Server) maxAttempts(j *Job) int {
	n := s.cfg.MaxAttempts
	if j.Spec.MaxAttempts > 0 {
		n = j.Spec.MaxAttempts
	}
	if q := s.cfg.QuarantineAfter; q > 0 {
		if rem := q - j.priorStarts; rem < n {
			n = rem
			if n < 1 {
				n = 1
			}
		}
	}
	return n
}

// execute runs one job under the internal/run supervisor and moves it to
// its terminal state, recording every transition in the WAL.
func (s *Server) execute(j *Job) {
	s.runningCount.Add(1)
	defer s.runningCount.Add(-1)

	attempt := 0
	cell := run.Cell{
		Key: j.ID,
		Work: func(actx context.Context) (json.RawMessage, error) {
			attempt++
			j.setRunning(attempt)
			// Record the start before doing the work: if this attempt takes
			// the process down, the orphaned running record is the evidence
			// recovery counts toward quarantine.
			s.walAppend(store.Record{Job: j.ID, Op: store.OpRunning, Attempt: j.priorStarts + attempt}) //nolint:errcheck // degraded mode is the handler
			if s.cfg.OnJobStart != nil {
				s.cfg.OnJobStart(j)
			}
			return s.runJob(actx, j, attempt)
		},
	}
	opts := run.Options{
		MaxAttempts: s.maxAttempts(j),
		Seed:        j.Spec.Seed,
	}
	if s.cfg.JobTimeout > 0 {
		// The engine's MaxWallTime (set in runJob) is the graceful bound;
		// the supervisor's attempt timeout is the backstop for a job stuck
		// inside a single policy call.
		opts.CellTimeout = 2 * s.cfg.JobTimeout
	}
	res := run.Single(s.jobCtx, cell, opts)
	if res.Attempts > 1 {
		s.retried.Add(int64(res.Attempts - 1))
	}

	if res.Status != run.StatusOK {
		starts := j.priorStarts + res.Attempts
		// Quarantine only on the job's own misbehavior (panics, or crash
		// evidence from prior lives) — never because shutdown cancelled it;
		// a drained job must stay recoverable.
		if q := s.cfg.QuarantineAfter; q > 0 && starts >= q && s.jobCtx.Err() == nil &&
			(isPanicErr(res.Err) || j.priorStarts > 0) {
			s.quarantined.Inc()
			j.finish(JobQuarantined, nil, fmt.Sprintf("quarantined after %d start(s): %s", starts, res.Err))
			s.walAppend(store.Record{Job: j.ID, Op: store.OpQuarantined, Error: walErr(res.Err)}) //nolint:errcheck
			s.publishSummary(j)
			s.logf("job %s QUARANTINED after %d start(s): %s", j.ID, starts, walErr(res.Err))
			return
		}
		s.failed.Inc()
		j.finish(JobFailed, nil, res.Err)
		s.walAppend(store.Record{Job: j.ID, Op: store.OpFailed, Error: walErr(res.Err)}) //nolint:errcheck
		s.publishSummary(j)
		s.logf("job %s failed after %d attempt(s): %s", j.ID, res.Attempts, res.Err)
		return
	}
	var out jobOutcome
	if err := json.Unmarshal(res.Result, &out); err != nil {
		s.failed.Inc()
		j.finish(JobFailed, nil, "corrupt job payload: "+err.Error())
		s.walAppend(store.Record{Job: j.ID, Op: store.OpFailed, Error: "corrupt job payload"}) //nolint:errcheck
		s.publishSummary(j)
		return
	}
	resultJSON, _ := json.Marshal(out.Result)
	switch {
	case out.Checkpointed:
		s.checkpointed.Inc()
		j.setCheckpoint(out.Checkpoint)
		reason := "drained"
		if out.TimedOut {
			reason = "timed out"
		}
		j.finish(JobCheckpointed, out.Result, "")
		s.walAppend(store.Record{Job: j.ID, Op: store.OpCheckpointed, Checkpoint: out.Checkpoint, Result: resultJSON}) //nolint:errcheck
		s.publishSummary(j)
		s.logf("job %s checkpointed (%s) at step %d -> %s", j.ID, reason, out.Steps, out.Checkpoint)
	case out.Canceled || out.TimedOut:
		// Stopped early with nowhere to save state.
		s.failed.Inc()
		reason := "canceled at drain"
		if out.TimedOut {
			reason = "job timeout exceeded"
		}
		j.finish(JobFailed, out.Result, reason+" (no checkpoint dir configured)")
		s.walAppend(store.Record{Job: j.ID, Op: store.OpFailed, Error: reason}) //nolint:errcheck
		s.publishSummary(j)
	default:
		s.completed.Inc()
		j.setFinalHash(out.FinalHash)
		j.finish(JobDone, out.Result, "")
		s.walAppend(store.Record{Job: j.ID, Op: store.OpDone, Result: resultJSON, FinalHash: out.FinalHash}) //nolint:errcheck
		s.publishSummary(j)
		if s.cfg.CheckpointDir != "" {
			// A finished job's periodic checkpoint is stale — it must not
			// shadow a future job or confuse recovery's resume probe.
			os.Remove(filepath.Join(s.cfg.CheckpointDir, j.ID+".hpck")) //nolint:errcheck
			if j.Spec.Shards != "" {
				os.RemoveAll(filepath.Join(s.cfg.CheckpointDir, j.ID+".shards")) //nolint:errcheck
			}
		}
		s.logf("job %s done: %d/%d delivered in %d steps",
			j.ID, out.Result.Delivered, out.Result.Total, out.Result.Steps)
	}
}

// runJob is one supervised attempt: build the engine, wire observers,
// run until completion, drain-cancel, or deadline.
func (s *Server) runJob(actx context.Context, j *Job, attempt int) (json.RawMessage, error) {
	if j.Spec.Shards != "" {
		if j.Spec.DistWorkers > 0 {
			return s.runDistributedJob(actx, j, attempt)
		}
		return s.runShardedJob(actx, j, attempt)
	}
	e, err := j.Spec.buildEngine(s.cfg.JobTimeout)
	if err != nil {
		return nil, err
	}
	defer e.Close()

	// The run stops on whichever fires first: the attempt's backstop
	// deadline (actx), or drain deciding that running jobs must checkpoint.
	ctx, cancel := context.WithCancel(actx)
	defer cancel()
	stop := context.AfterFunc(s.jobCtx, cancel)
	defer stop()

	// Progress epochs: publish to stream followers, update status and the
	// shared step counters. Step latency is sampled per step.
	last := time.Now()
	e.AddObserver(sim.ObserverFunc(func(*sim.StepRecord) {
		now := time.Now()
		s.stepLatency.Observe(now.Sub(last).Seconds())
		last = now
		s.stepsTotal.Inc()
	}))
	e.AddObserver(sim.NewProgressSampler(e, j.Spec.ProgressEvery, func(p sim.Progress) {
		j.setProgress(p)
		s.publishProgress(j, attempt, p)
	}))
	if d := time.Duration(j.Spec.StepDelay); d > 0 {
		e.AddObserver(sim.ObserverFunc(func(*sim.StepRecord) { time.Sleep(d) }))
	}

	// Checkpoint sink: used when the run stops early, and — with
	// CheckpointEvery > 0 — periodically mid-run, so a hard crash resumes
	// from the last saved epoch instead of step zero. checkpoint.Save is
	// atomic (temp+rename), so a crash mid-save leaves the previous
	// checkpoint intact.
	saved := ""
	every := 0
	var save func(*sim.Snapshot) error
	if s.cfg.CheckpointDir != "" {
		every = s.cfg.CheckpointEvery
		path := filepath.Join(s.cfg.CheckpointDir, j.ID+".hpck")
		save = func(snap *sim.Snapshot) error {
			if err := checkpoint.Save(path, snap, checkpoint.Binary); err != nil {
				return err
			}
			saved = path
			return nil
		}
	}

	started := time.Now()
	res, runErr := e.RunCheckpointed(ctx, every, save)
	if runErr != nil && !errors.Is(runErr, context.Canceled) {
		return nil, runErr // validation failure, policy panic, checkpoint I/O
	}
	elapsed := time.Since(started)

	final := e.Progress()
	j.setProgress(final)
	s.publishProgress(j, attempt, final)
	if elapsed > 0 && final.Time > 0 {
		s.stepsPerSec.Observe(float64(final.Time) / elapsed.Seconds())
	}

	out := jobOutcome{Result: res, Steps: final.Time}
	switch {
	case runErr != nil: // context.Canceled: drain or backstop
		out.Canceled = true
		if save != nil && saved == "" {
			// Cancelled before the first step: RunCheckpointed had no
			// unsaved progress to flush, but the initial state is still
			// worth keeping — it is the job itself.
			snap, err := e.Snapshot()
			if err != nil {
				return nil, err
			}
			if err := save(snap); err != nil {
				return nil, err
			}
		}
	case res.DeadlineExceeded:
		out.TimedOut = true
	default:
		out.FinalHash = resultFingerprint(e, final)
	}
	out.Checkpointed = saved != "" && (out.Canceled || out.TimedOut)
	out.Checkpoint = saved
	return json.Marshal(out)
}

// runShardedJob is runJob's counterpart for specs with Shards set: the same
// supervision contract (progress epochs, drain-cancel, periodic
// checkpoints, final-state fingerprint) driven through the sharded engine,
// which reports through StepHook instead of observers. A sharded checkpoint
// is a directory — one part per shard plus a manifest — at
// CheckpointDir/<id>.shards, and resume_from takes such a directory.
func (s *Server) runShardedJob(actx context.Context, j *Job, attempt int) (json.RawMessage, error) {
	e, err := j.Spec.buildShardEngine(s.cfg.JobTimeout)
	if err != nil {
		return nil, err
	}
	defer e.Close()

	ctx, cancel := context.WithCancel(actx)
	defer cancel()
	stop := context.AfterFunc(s.jobCtx, cancel)
	defer stop()

	last := time.Now()
	sinceEpoch := 0
	delay := time.Duration(j.Spec.StepDelay)
	e.StepHook = func(int, int) {
		now := time.Now()
		s.stepLatency.Observe(now.Sub(last).Seconds())
		last = now
		s.stepsTotal.Inc()
		if sinceEpoch++; sinceEpoch >= j.Spec.ProgressEvery {
			sinceEpoch = 0
			p := e.Progress()
			j.setProgress(p)
			s.publishProgress(j, attempt, p)
		}
		if delay > 0 {
			time.Sleep(delay)
		}
	}

	saved := ""
	every := 0
	var save func(*shard.Checkpoint) error
	if s.cfg.CheckpointDir != "" {
		every = s.cfg.CheckpointEvery
		dir := filepath.Join(s.cfg.CheckpointDir, j.ID+".shards")
		save = func(ck *shard.Checkpoint) error {
			if err := shard.SaveDir(dir, ck, checkpoint.Binary); err != nil {
				return err
			}
			saved = dir
			return nil
		}
	}

	started := time.Now()
	res, runErr := e.RunCheckpointed(ctx, every, save)
	if runErr != nil && !errors.Is(runErr, context.Canceled) {
		return nil, runErr // validation failure, shard panic, checkpoint I/O
	}
	elapsed := time.Since(started)

	final := e.Progress()
	j.setProgress(final)
	s.publishProgress(j, attempt, final)
	if elapsed > 0 && final.Time > 0 {
		s.stepsPerSec.Observe(float64(final.Time) / elapsed.Seconds())
	}

	out := jobOutcome{Result: res, Steps: final.Time}
	switch {
	case runErr != nil: // context.Canceled: drain or backstop
		out.Canceled = true
		if save != nil && saved == "" {
			// Cancelled before the first step: keep the initial state, it is
			// the job itself (mirroring the single-engine path).
			ck, err := e.Checkpoint()
			if err != nil {
				return nil, err
			}
			if err := save(ck); err != nil {
				return nil, err
			}
		}
	case res.DeadlineExceeded:
		out.TimedOut = true
	default:
		out.FinalHash = resultFingerprint(e, final)
	}
	out.Checkpointed = saved != "" && (out.Canceled || out.TimedOut)
	out.Checkpoint = saved
	return json.Marshal(out)
}

// runDistributedJob is the execution path for specs with DistWorkers set:
// the job runs on the dshard coordinator with DistWorkers in-process worker
// processes over loopback TCP, under the same supervision contract as the
// other paths. The coordinator persists its own coordinated checkpoints
// (same .shards directory as the sharded path, so recovery and resume_from
// interoperate across all three engines) and survives worker failures
// internally by rolling back to the last one.
func (s *Server) runDistributedJob(actx context.Context, j *Job, attempt int) (json.RawMessage, error) {
	dir := ""
	if s.cfg.CheckpointDir != "" {
		dir = filepath.Join(s.cfg.CheckpointDir, j.ID+".shards")
	}
	c, err := j.Spec.buildCoordinator(s.cfg.JobTimeout, dir, s.cfg.CheckpointEvery)
	if err != nil {
		return nil, err
	}
	defer c.Close()

	ctx, cancel := context.WithCancel(actx)
	defer cancel()
	stop := context.AfterFunc(s.jobCtx, cancel)
	defer stop()

	last := time.Now()
	sinceEpoch := 0
	delay := time.Duration(j.Spec.StepDelay)
	c.StepHook = func(int, int) {
		now := time.Now()
		s.stepLatency.Observe(now.Sub(last).Seconds())
		last = now
		s.stepsTotal.Inc()
		if sinceEpoch++; sinceEpoch >= j.Spec.ProgressEvery {
			sinceEpoch = 0
			p := c.Progress()
			j.setProgress(p)
			s.publishProgress(j, attempt, p)
		}
		if delay > 0 {
			time.Sleep(delay)
		}
	}

	started := time.Now()
	res, runErr := c.Run(ctx)
	if runErr != nil && !errors.Is(runErr, context.Canceled) {
		return nil, runErr // run lost past the recovery budget, fatal worker error, save I/O
	}
	elapsed := time.Since(started)

	final := c.Progress()
	j.setProgress(final)
	s.publishProgress(j, attempt, final)
	if elapsed > 0 && final.Time > 0 {
		s.stepsPerSec.Observe(float64(final.Time) / elapsed.Seconds())
	}

	out := jobOutcome{Result: res, Steps: final.Time}
	switch {
	case runErr != nil: // context.Canceled: drain or backstop
		out.Canceled = true
	case res.DeadlineExceeded:
		out.TimedOut = true
	default:
		out.FinalHash = resultFingerprint(c, final)
	}
	// The coordinator saves on every early stop itself (including before the
	// first step), so a committed checkpoint on disk is the whole test.
	if dir != "" && (out.Canceled || out.TimedOut) && shard.HasCheckpoint(dir) {
		out.Checkpointed = true
		out.Checkpoint = dir
	}
	return json.Marshal(out)
}

// publishProgress emits one NDJSON progress event.
func (s *Server) publishProgress(j *Job, attempt int, p sim.Progress) {
	line, err := json.Marshal(struct {
		Type    string `json:"type"`
		JobID   string `json:"job_id"`
		Attempt int    `json:"attempt"`
		sim.Progress
	}{"progress", j.ID, attempt, p})
	if err != nil {
		return
	}
	j.publish(line)
}

// publishSummary emits the final NDJSON event after the job reached its
// terminal state.
func (s *Server) publishSummary(j *Job) {
	st := j.status()
	line, err := json.Marshal(struct {
		Type       string      `json:"type"`
		JobID      string      `json:"job_id"`
		State      JobState    `json:"state"`
		Result     *sim.Result `json:"result,omitempty"`
		Error      string      `json:"error,omitempty"`
		Checkpoint string      `json:"checkpoint,omitempty"`
	}{"summary", j.ID, st.State, st.Result, st.Error, st.Checkpoint})
	if err != nil {
		return
	}
	j.publishFinal(line)
}

// Handler returns the service's HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/stream", s.handleStream)
	mux.HandleFunc("GET /v1/spec", handleSpec)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if s.Degraded() {
			http.Error(w, "degraded: job store unwritable", http.StatusServiceUnavailable)
			return
		}
		if s.Draining() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ready")
	})
	return mux
}

// handleSpec serves the registry catalog: every policy, workload and
// arrival process the server accepts, with parameter schemas and defaults.
// Clients discover what a job spec may say without trial submissions.
func handleSpec(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, spec.Catalog())
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // the connection owns delivery
}

type apiError struct {
	Error string `json:"error"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var js JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&js); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{"bad job spec: " + err.Error()})
		return
	}
	if js.Tenant == "" {
		js.Tenant = r.Header.Get("X-Tenant")
	}
	j, err := s.Submit(js)
	var throttle *throttleError
	switch {
	case errors.As(err, &throttle):
		// Retry-After is whole seconds; round the token wait up so a
		// well-behaved client never retries into another 429.
		secs := int64((throttle.wait + time.Second - 1) / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
		writeJSON(w, http.StatusTooManyRequests, apiError{err.Error()})
		return
	case errors.Is(err, errQueueFull):
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, apiError{err.Error()})
		return
	case errors.Is(err, errDraining), errors.Is(err, errDegraded):
		writeJSON(w, http.StatusServiceUnavailable, apiError{err.Error()})
		return
	case err != nil:
		writeJSON(w, http.StatusBadRequest, apiError{err.Error()})
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+j.ID)
	writeJSON(w, http.StatusAccepted, j.status())
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	jobs := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()
	out := make([]jobStatus, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.status())
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{"no such job"})
		return
	}
	writeJSON(w, http.StatusOK, j.status())
}

// handleStream serves the job's NDJSON event stream: everything emitted so
// far is replayed, then the connection follows live until the job reaches
// a terminal state (the final summary line) or the client goes away.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{"no such job"})
		return
	}
	fl, canFlush := w.(http.Flusher)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	if canFlush {
		fl.Flush()
	}
	i := 0
	for {
		lines, done, changed := j.eventsFrom(i)
		for _, line := range lines {
			if _, err := w.Write(append(line, '\n')); err != nil {
				return
			}
		}
		i += len(lines)
		if len(lines) > 0 && canFlush {
			fl.Flush()
		}
		if done {
			// The summary was in this batch (or an earlier one): the
			// stream is complete.
			return
		}
		select {
		case <-changed:
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.reg.WritePrometheus(w) //nolint:errcheck // the connection owns delivery
}

// Metrics exposes the registry (the daemon adds process-level gauges).
func (s *Server) Metrics() *metrics.Registry { return s.reg }
