package policylab

import "hotpotato/internal/sim"

// DefaultRingSize is the number of most-recent conflicts a Recorder keeps
// in memory when the caller does not choose a capacity.
const DefaultRingSize = 4096

// Recorder implements sim.ConflictObserver: it copies each conflict record
// (the engine's record is scratch, valid only during the call) into a fixed
// ring of the most recent conflicts, and optionally spills every record to
// a Writer. Aggregate counters cover the whole run regardless of ring
// wrap-around.
type Recorder struct {
	ring  []sim.ConflictRecord
	next  int // ring insertion cursor
	n     int // records currently held (≤ len(ring))
	total int64

	contenders int64
	deflected  int64
	distBefore int64
	distAfter  int64

	spill *Writer
	err   error
}

// NewRecorder returns a Recorder keeping the last capacity conflicts
// (DefaultRingSize when capacity <= 0).
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultRingSize
	}
	return &Recorder{ring: make([]sim.ConflictRecord, capacity)}
}

// Spill streams every record (not just the ring window) to w as it is
// observed. The first write error is latched (see Err) and stops further
// spilling; recording continues.
func (r *Recorder) Spill(w *Writer) { r.spill = w }

// OnConflict implements sim.ConflictObserver.
func (r *Recorder) OnConflict(rec *sim.ConflictRecord) {
	r.total++
	r.contenders += int64(len(rec.Contenders))
	r.deflected += int64(rec.Deflected)
	r.distBefore += int64(rec.DistBefore)
	r.distAfter += int64(rec.DistAfter)
	// Keep the slot's own backing array: *slot = *rec would replace it with
	// the engine's scratch slice, and appending scratch onto scratch would
	// leave every slot aliasing the engine's (mutating) record.
	slot := &r.ring[r.next]
	backing := slot.Contenders
	*slot = *rec
	slot.Contenders = append(backing[:0], rec.Contenders...)
	r.next = (r.next + 1) % len(r.ring)
	if r.n < len(r.ring) {
		r.n++
	}
	if r.spill != nil && r.err == nil {
		r.err = r.spill.Write(rec)
	}
}

// Records returns the retained window, oldest first. The returned slice is
// freshly allocated but shares Contenders backing arrays with the ring;
// callers that keep recording should copy what they need.
func (r *Recorder) Records() []sim.ConflictRecord {
	out := make([]sim.ConflictRecord, 0, r.n)
	start := (r.next - r.n + len(r.ring)) % len(r.ring)
	for i := 0; i < r.n; i++ {
		out = append(out, r.ring[(start+i)%len(r.ring)])
	}
	return out
}

// Total is the number of conflicts observed over the whole run.
func (r *Recorder) Total() int64 { return r.total }

// Stats summarizes the whole run: conflicts observed, total contenders,
// total deflections issued in conflicts, and the aggregate distance
// potential before/after the conflicting moves.
func (r *Recorder) Stats() (total, contenders, deflected, distBefore, distAfter int64) {
	return r.total, r.contenders, r.deflected, r.distBefore, r.distAfter
}

// Err reports the first spill write error, if any.
func (r *Recorder) Err() error { return r.err }
