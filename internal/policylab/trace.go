// Package policylab is the decision-analysis layer over the simulator: it
// records *why* runs unfold the way they do and asks what would have
// happened otherwise. Three tools:
//
//   - Conflict tracing (Recorder, Writer, ReadTrace): an opt-in tap on the
//     engine's sim.ConflictObserver hook that captures every routing
//     conflict — the contenders, the decision features a priority rule
//     could have used, who won, who was deflected, and the node's
//     contribution to the distance potential — ring-buffered in memory and
//     spillable to a CRC-framed JSONL stream.
//   - Counterfactual replay (Replay): re-run a recorded window from a
//     checkpoint under K alternative priority orders and score the
//     divergence (deliveries, deflections, potential trajectory).
//   - Policy search (subpackage search): random + evolutionary search over
//     the parameterized weighted policy family, with a verification pass
//     that checks whether the paper's potential-decrease property still
//     holds for what the search finds.
package policylab

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"hotpotato/internal/sim"
)

// TraceVersion is the schema version written into the trace header line.
const TraceVersion = 1

// traceName identifies the file type in the header line.
const traceName = "hotpotato-conflicts"

// ErrBadTrace is returned when a conflict-trace file cannot be used: wrong
// header, a version from a future build, or corruption before the final
// line.
var ErrBadTrace = errors.New("policylab: not a usable conflict trace")

// TraceHeader is the first line of every conflict-trace file: the run
// configuration the records were captured under, so a trace is
// self-describing.
type TraceHeader struct {
	Trace   string `json:"trace"`
	Version int    `json:"version"`
	Dim     int    `json:"dim"`
	Side    int    `json:"side"`
	Wrap    bool   `json:"wrap,omitempty"`
	Policy  string `json:"policy"`
	Seed    int64  `json:"seed"`
}

// Writer streams conflict records to a CRC-framed JSONL file, one record
// per line: an 8-hex-digit CRC-32 (IEEE) of the JSON payload, one space,
// the payload — the same hostile-input-tolerant framing as the job-store
// WAL and internal/run's journal, so a torn final line from a crashed or
// interrupted run is detectable and everything before it stays readable.
type Writer struct {
	w   *bufio.Writer
	buf bytes.Buffer
}

// NewWriter writes the header line and returns a Writer. The caller owns w
// (call Writer.Flush before closing it).
func NewWriter(w io.Writer, hdr TraceHeader) (*Writer, error) {
	hdr.Trace = traceName
	hdr.Version = TraceVersion
	line, err := json.Marshal(hdr)
	if err != nil {
		return nil, fmt.Errorf("policylab: trace header: %w", err)
	}
	tw := &Writer{w: bufio.NewWriter(w)}
	if _, err := tw.w.Write(append(line, '\n')); err != nil {
		return nil, fmt.Errorf("policylab: trace write: %w", err)
	}
	return tw, nil
}

// Write appends one framed record.
func (tw *Writer) Write(rec *sim.ConflictRecord) error {
	tw.buf.Reset()
	enc := json.NewEncoder(&tw.buf)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(rec); err != nil {
		return fmt.Errorf("policylab: trace encode: %w", err)
	}
	payload := bytes.TrimRight(tw.buf.Bytes(), "\n")
	if _, err := fmt.Fprintf(tw.w, "%08x %s\n", crc32.ChecksumIEEE(payload), payload); err != nil {
		return fmt.Errorf("policylab: trace write: %w", err)
	}
	return nil
}

// Flush drains the internal buffer to the underlying writer.
func (tw *Writer) Flush() error {
	if err := tw.w.Flush(); err != nil {
		return fmt.Errorf("policylab: trace flush: %w", err)
	}
	return nil
}

// ReadTrace decodes a conflict-trace stream. A torn final line — the
// signature of a crash or an interrupt mid-write — is chopped off silently;
// a bad line followed by more records is real corruption and returns an
// error wrapping ErrBadTrace. Never panics on arbitrary input (see
// FuzzReadTrace).
func ReadTrace(r io.Reader) (TraceHeader, []sim.ConflictRecord, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var hdr TraceHeader
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return hdr, nil, fmt.Errorf("policylab: read trace: %w", err)
		}
		return hdr, nil, fmt.Errorf("%w: empty file", ErrBadTrace)
	}
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil || hdr.Trace != traceName {
		return hdr, nil, fmt.Errorf("%w: bad header line", ErrBadTrace)
	}
	if hdr.Version != TraceVersion {
		return hdr, nil, fmt.Errorf("%w: trace version %d, this build reads %d", ErrBadTrace, hdr.Version, TraceVersion)
	}
	var recs []sim.ConflictRecord
	bad := -1 // line number of the first undecodable line, if any
	line := 1
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(bytes.TrimSpace(raw)) == 0 {
			continue
		}
		if bad >= 0 {
			// A decodable-or-not line after a bad one means the bad line was
			// not a torn tail: refuse the file.
			return hdr, nil, fmt.Errorf("%w: corrupt record at line %d", ErrBadTrace, bad)
		}
		rec, ok := decodeLine(raw)
		if !ok {
			bad = line
			continue
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return hdr, nil, fmt.Errorf("policylab: read trace: %w", err)
	}
	return hdr, recs, nil
}

// decodeLine parses one "crc payload" record line and verifies the CRC.
func decodeLine(raw []byte) (sim.ConflictRecord, bool) {
	var rec sim.ConflictRecord
	if len(raw) < 10 || raw[8] != ' ' {
		return rec, false
	}
	var want uint32
	if _, err := fmt.Sscanf(string(raw[:8]), "%08x", &want); err != nil {
		return rec, false
	}
	payload := raw[9:]
	if crc32.ChecksumIEEE(payload) != want {
		return rec, false
	}
	if err := json.Unmarshal(payload, &rec); err != nil {
		return rec, false
	}
	return rec, true
}
