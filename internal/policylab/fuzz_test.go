package policylab

import (
	"bytes"
	"testing"
)

// FuzzReadTrace: the trace decoder must never panic on arbitrary input, and
// re-encoding whatever it accepts must decode back to the same records
// (write/read inverse on the accepted set).
func FuzzReadTrace(f *testing.F) {
	// Seed with a well-formed trace, a torn one, and assorted junk.
	var buf bytes.Buffer
	w, err := NewWriter(&buf, TraceHeader{Dim: 2, Side: 8, Policy: "restricted-priority", Seed: 1})
	if err != nil {
		f.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		rec := mkRecord(i, i+4)
		if err := w.Write(&rec); err != nil {
			f.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		f.Fatal(err)
	}
	full := buf.Bytes()
	f.Add(full)
	f.Add(full[:len(full)-7])
	f.Add([]byte("{\"trace\":\"hotpotato-conflicts\",\"version\":1}\n"))
	f.Add([]byte("{\"trace\":\"hotpotato-conflicts\",\"version\":99}\n"))
	f.Add([]byte("not json\n00000000 {}\n"))
	f.Add([]byte{})
	f.Add([]byte("{\"trace\":\"hotpotato-conflicts\",\"version\":1}\ndeadbeef {\"t\":1}\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		hdr, recs, err := ReadTrace(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Round-trip what was accepted.
		var out bytes.Buffer
		w, err := NewWriter(&out, hdr)
		if err != nil {
			t.Fatalf("accepted header %+v but cannot re-encode: %v", hdr, err)
		}
		for i := range recs {
			if err := w.Write(&recs[i]); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		hdr2, recs2, err := ReadTrace(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-encoded trace rejected: %v", err)
		}
		if hdr2 != hdr {
			t.Fatalf("header changed over round trip: %+v != %+v", hdr2, hdr)
		}
		if len(recs2) != len(recs) {
			t.Fatalf("record count changed over round trip: %d != %d", len(recs2), len(recs))
		}
	})
}
