// Package search runs automated policy search over the parameterized
// weighted greedy family ("weighted:age=..,defl=..,dist=..,restrict=..",
// see internal/spec): random initialization plus local-mutation
// evolutionary refinement, scored by multi-objective fitness over a panel
// of workloads (batch permutation, Poisson arrivals, the (ρ,σ) column
// adversary), followed by a verification pass that measures whether the
// paper's potential-decrease property (Property 8) still holds empirically
// for the discovered policy. Everything is deterministic given Config.Seed.
package search

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strconv"

	"hotpotato/internal/core"
	"hotpotato/internal/mesh"
	"hotpotato/internal/sim"
	"hotpotato/internal/spec"
	"hotpotato/internal/stats"
)

// Params is one point of the weighted policy family's search space.
type Params struct {
	Age      float64 `json:"age"`
	Dist     float64 `json:"dist"`
	Restrict float64 `json:"restrict"`
	Deflect  float64 `json:"defl"`
}

// quantum is the search-space grid: weights are rounded to multiples of
// 1/256, comfortably finer than the policy's own 1/1024 fixed-point
// quantization, so spec strings stay short and candidates dedup exactly.
const quantum = 256

// weightBound clamps mutated weights; the family is scale-invariant (only
// weight ratios matter), so a bounded box loses no policies.
const weightBound = 8

func quantize(v float64) float64 {
	q := math.Round(v*quantum) / quantum
	if q > weightBound {
		q = weightBound
	}
	if q < -weightBound {
		q = -weightBound
	}
	if q == 0 { // normalize -0 so specs render identically
		return 0
	}
	return q
}

// Spec renders the point as the policy spec string every surface accepts.
func (p Params) Spec() string {
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	return "weighted:age=" + f(p.Age) + ",defl=" + f(p.Deflect) +
		",dist=" + f(p.Dist) + ",restrict=" + f(p.Restrict)
}

// Metric selects the panel-entry score. All metrics are lower-is-better.
type Metric string

const (
	// MetricSteps is the batch makespan (steps until the last delivery;
	// livelocked or unfinished runs score the full step budget plus the
	// undelivered backlog).
	MetricSteps Metric = "steps"
	// MetricMeanDelay is the mean packet delay; packets still in flight at
	// the end are censored at the horizon (budget - injection time), so
	// starving packets are charged, not ignored.
	MetricMeanDelay Metric = "mean_delay"
	// MetricP99Delay is the 99th-percentile packet delay, censored the same
	// way.
	MetricP99Delay Metric = "p99_delay"
	// MetricDeflections is deflections per delivered packet.
	MetricDeflections Metric = "deflections"
)

// PanelEntry is one workload/metric pair of the fitness panel.
type PanelEntry struct {
	// Name labels the entry in reports ("perm/steps").
	Name string `json:"name"`
	// Workload is the batch workload spec ("none" for pure arrival runs).
	Workload string `json:"workload"`
	// K is the batch packet count (ignored by fixed-size workloads).
	K int `json:"k,omitempty"`
	// Arrivals is the arrival spec ("" for batch-only entries).
	Arrivals string `json:"arrivals,omitempty"`
	// MaxSteps is the entry's step budget.
	MaxSteps int `json:"max_steps"`
	// Metric scores the run.
	Metric Metric `json:"metric"`
}

// DefaultPanel is the three-workload panel from the issue: the batch
// permutation the paper's bound addresses, smooth Poisson arrivals, and the
// (ρ,σ) column adversary — makespan, p99 delay and p99 delay respectively.
func DefaultPanel(side int) []PanelEntry {
	return []PanelEntry{
		{Name: "perm/steps", Workload: "permutation", MaxSteps: 40 * side, Metric: MetricSteps},
		{Name: "poisson/p99", Workload: "none", Arrivals: "poisson:rate=0.02,until=200", MaxSteps: 200 + 30*side, Metric: MetricP99Delay},
		{Name: "adversary/p99", Workload: "none", Arrivals: fmt.Sprintf("adversary:rho=%g,sigma=6,until=200", float64(side)/4), MaxSteps: 200 + 30*side, Metric: MetricP99Delay},
	}
}

// Config parameterizes a search run.
type Config struct {
	// Side is the mesh side (2-dimensional, no wrap).
	Side int `json:"side"`
	// Seeds are the per-trial engine/workload seeds; every candidate is
	// scored on every (panel entry, seed) pair and entries average over
	// seeds.
	Seeds []int64 `json:"seeds"`
	// Panel is the fitness panel; nil means DefaultPanel(Side).
	Panel []PanelEntry `json:"panel,omitempty"`
	// Population, Generations, Elite, Immigrants and MutationScale shape
	// the evolutionary loop: each generation keeps the Elite best, adds
	// Immigrants fresh random points, and fills the rest with Gaussian
	// mutations (scale MutationScale) of the elites.
	Population    int     `json:"population"`
	Generations   int     `json:"generations"`
	Elite         int     `json:"elite"`
	Immigrants    int     `json:"immigrants"`
	MutationScale float64 `json:"mutation_scale"`
	// Baseline is the policy spec the candidates are normalized against and
	// must beat; default "restricted" (the paper's rule).
	Baseline string `json:"baseline"`
	// Seed drives the search's own randomness (initialization, mutation).
	Seed int64 `json:"seed"`
	// VerifySteps budgets the verification pass; 0 disables verification.
	VerifySteps int `json:"verify_steps,omitempty"`
}

// withDefaults fills the zero fields.
func (c Config) withDefaults() Config {
	if c.Side == 0 {
		c.Side = 12
	}
	if len(c.Seeds) == 0 {
		c.Seeds = []int64{1, 2}
	}
	if c.Panel == nil {
		c.Panel = DefaultPanel(c.Side)
	}
	if c.Population == 0 {
		c.Population = 16
	}
	if c.Generations == 0 {
		c.Generations = 6
	}
	if c.Elite == 0 {
		c.Elite = 3
	}
	if c.Immigrants == 0 {
		c.Immigrants = 2
	}
	if c.MutationScale == 0 {
		c.MutationScale = 0.5
	}
	if c.Baseline == "" {
		c.Baseline = "restricted"
	}
	return c
}

// Candidate is one evaluated point: its per-entry scores (averaged over
// seeds) and its scalar fitness (mean score ratio vs the baseline; < 1
// beats the baseline on average).
type Candidate struct {
	Params  Params             `json:"params"`
	Spec    string             `json:"spec"`
	Scores  map[string]float64 `json:"scores"`
	Fitness float64            `json:"fitness"`
}

// GenSummary records one generation's best for the report's history.
type GenSummary struct {
	Gen     int     `json:"gen"`
	Best    string  `json:"best"`
	Fitness float64 `json:"fitness"`
}

// Win describes one workload/metric pair where the best candidate beat the
// baseline.
type Win struct {
	Entry    string  `json:"entry"`
	Score    float64 `json:"score"`
	Baseline float64 `json:"baseline"`
}

// Verification reports the potential-decrease check on the discovered
// policy: the best candidate is run on a batch permutation under the
// paper's potential tracker and every Property 8 breach is counted.
type Verification struct {
	Policy string `json:"policy"`
	Steps  int    `json:"steps"`
	// Property8Violations counts node-steps whose potential loss fell short
	// of Property 8's bound; Property8Held is its zero-ness. The restricted
	// rule holds it by construction; an unconstrained weighted policy
	// usually does not — which is exactly what this pass is for.
	Property8Violations int  `json:"property8_violations"`
	Property8Held       bool `json:"property8_held"`
	// Violations is the tracker's full counter summary.
	Violations string `json:"violations"`
}

// Report is the full result of a search run.
type Report struct {
	Config       Config        `json:"config"`
	Baseline     Candidate     `json:"baseline"`
	Best         Candidate     `json:"best"`
	Evaluated    int           `json:"evaluated"`
	History      []GenSummary  `json:"history"`
	Wins         []Win         `json:"wins"`
	Verification *Verification `json:"verification,omitempty"`
}

// Run executes the search. Deterministic: the same config produces the
// same report, bit for bit.
func Run(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	m, err := mesh.New(2, cfg.Side)
	if err != nil {
		return nil, err
	}
	ev := &evaluator{m: m, cfg: cfg, cache: map[string]Candidate{}}

	baseScores, err := ev.scores(cfg.Baseline)
	if err != nil {
		return nil, fmt.Errorf("search: baseline %q: %w", cfg.Baseline, err)
	}
	ev.base = baseScores
	baseline := Candidate{Spec: cfg.Baseline, Scores: baseScores, Fitness: 1}

	rng := rand.New(rand.NewSource(cfg.Seed))
	pop := seedPopulation(cfg, rng)
	rep := &Report{Config: cfg, Baseline: baseline}
	var ranked []Candidate
	for gen := 0; gen < cfg.Generations; gen++ {
		ranked = ranked[:0]
		for _, p := range pop {
			c, err := ev.candidate(p)
			if err != nil {
				return nil, err
			}
			ranked = append(ranked, c)
		}
		sort.SliceStable(ranked, func(i, j int) bool { return ranked[i].Fitness < ranked[j].Fitness })
		rep.History = append(rep.History, GenSummary{Gen: gen, Best: ranked[0].Spec, Fitness: ranked[0].Fitness})
		if gen == cfg.Generations-1 {
			break
		}
		pop = nextGeneration(cfg, ranked, rng)
	}
	rep.Best = ranked[0]
	rep.Evaluated = len(ev.cache)
	for _, e := range cfg.Panel {
		if s, b := rep.Best.Scores[e.Name], baseScores[e.Name]; s < b {
			rep.Wins = append(rep.Wins, Win{Entry: e.Name, Score: s, Baseline: b})
		}
	}
	if cfg.VerifySteps > 0 {
		v, err := Verify(m, rep.Best.Spec, cfg.Seeds[0], cfg.VerifySteps)
		if err != nil {
			return nil, err
		}
		rep.Verification = v
	}
	return rep, nil
}

// seedPopulation builds generation 0: the family's interpretable corners
// (each classic rule as a pure weight), then random points.
func seedPopulation(cfg Config, rng *rand.Rand) []Params {
	pop := []Params{
		{},            // all-zero: random greedy
		{Age: 1},      // oldest-first
		{Dist: 1},     // farthest-first
		{Restrict: 1}, // restricted-priority-ish
		{Deflect: 1},  // most-deflected-first
		{Age: 1, Restrict: 2},
	}
	if len(pop) > cfg.Population {
		pop = pop[:cfg.Population]
	}
	for len(pop) < cfg.Population {
		pop = append(pop, randomPoint(rng))
	}
	return pop
}

// randomPoint samples weights uniformly from [-2, 2].
func randomPoint(rng *rand.Rand) Params {
	u := func() float64 { return quantize(rng.Float64()*4 - 2) }
	return Params{Age: u(), Dist: u(), Restrict: u(), Deflect: u()}
}

// nextGeneration keeps the elites, injects immigrants, and fills the rest
// with Gaussian mutations of uniformly chosen elites.
func nextGeneration(cfg Config, ranked []Candidate, rng *rand.Rand) []Params {
	elite := cfg.Elite
	if elite > len(ranked) {
		elite = len(ranked)
	}
	next := make([]Params, 0, cfg.Population)
	for i := 0; i < elite; i++ {
		next = append(next, ranked[i].Params)
	}
	for i := 0; i < cfg.Immigrants && len(next) < cfg.Population; i++ {
		next = append(next, randomPoint(rng))
	}
	for len(next) < cfg.Population {
		p := ranked[rng.Intn(elite)].Params
		g := func(v float64) float64 { return quantize(v + rng.NormFloat64()*cfg.MutationScale) }
		next = append(next, Params{Age: g(p.Age), Dist: g(p.Dist), Restrict: g(p.Restrict), Deflect: g(p.Deflect)})
	}
	return next
}

// evaluator scores policy specs over the panel, memoized by spec string —
// elites and re-discovered points are never re-simulated.
type evaluator struct {
	m     *mesh.Mesh
	cfg   Config
	base  map[string]float64
	cache map[string]Candidate
}

// candidate scores one search point (memoized).
func (ev *evaluator) candidate(p Params) (Candidate, error) {
	s := p.Spec()
	if c, ok := ev.cache[s]; ok {
		return c, nil
	}
	scores, err := ev.scores(s)
	if err != nil {
		return Candidate{}, fmt.Errorf("search: candidate %q: %w", s, err)
	}
	c := Candidate{Params: p, Spec: s, Scores: scores, Fitness: fitness(ev.cfg.Panel, scores, ev.base)}
	ev.cache[s] = c
	return c, nil
}

// fitness is the mean over panel entries of score/baseline (both floored
// at 1 to keep tiny denominators from exploding the ratio).
func fitness(panel []PanelEntry, scores, base map[string]float64) float64 {
	var sum float64
	for _, e := range panel {
		s, b := scores[e.Name], base[e.Name]
		if s < 1 {
			s = 1
		}
		if b < 1 {
			b = 1
		}
		sum += s / b
	}
	return sum / float64(len(panel))
}

// scores runs the policy over every (panel entry, seed) pair and averages
// each entry over its seeds.
func (ev *evaluator) scores(polSpec string) (map[string]float64, error) {
	mk, err := spec.PolicyFactory(polSpec)
	if err != nil {
		return nil, err
	}
	out := make(map[string]float64, len(ev.cfg.Panel))
	for _, entry := range ev.cfg.Panel {
		var sum float64
		for _, seed := range ev.cfg.Seeds {
			v, err := ev.scoreOne(mk(), entry, seed)
			if err != nil {
				return nil, fmt.Errorf("entry %q seed %d: %w", entry.Name, seed, err)
			}
			sum += v
		}
		out[entry.Name] = sum / float64(len(ev.cfg.Seeds))
	}
	return out, nil
}

// scoreOne runs one trial and applies the entry's metric.
func (ev *evaluator) scoreOne(pol sim.Policy, entry PanelEntry, seed int64) (float64, error) {
	k := entry.K
	if k == 0 {
		k = ev.m.Size() / 2
	}
	pkts, err := spec.NewWorkload(entry.Workload, ev.m, k, rand.New(rand.NewSource(seed)))
	if err != nil {
		return 0, err
	}
	e, err := sim.New(ev.m, pol, pkts, sim.Options{
		Seed:       seed + 1,
		MaxSteps:   entry.MaxSteps,
		Validation: sim.ValidateGreedy,
	})
	if err != nil {
		return 0, err
	}
	if entry.Arrivals != "" {
		as, err := spec.ParseArrivalSpec(entry.Arrivals)
		if err != nil {
			return 0, err
		}
		src, err := spec.BuildArrivals(as, ev.m)
		if err != nil {
			return 0, err
		}
		e.SetInjector(src)
	}
	res, err := e.Run()
	if err != nil {
		return 0, err
	}
	return metricValue(entry, e, res), nil
}

// metricValue scores a finished run. Undelivered packets are censored at
// the horizon: a packet still in flight when the budget ran out counts a
// delay of (budget - injection), so policies cannot win by starving the
// hard packets out of the statistics.
func metricValue(entry PanelEntry, e *sim.Engine, res *sim.Result) float64 {
	switch entry.Metric {
	case MetricSteps:
		v := float64(res.Steps)
		if res.Livelocked || res.Total != res.Delivered {
			v = float64(entry.MaxSteps + (res.Total - res.Delivered))
		}
		return v
	case MetricDeflections:
		if res.Delivered == 0 {
			return float64(entry.MaxSteps)
		}
		return float64(res.TotalDeflections) / float64(res.Delivered)
	case MetricMeanDelay, MetricP99Delay:
		delays := make([]float64, 0, len(e.Packets()))
		for _, p := range e.Packets() {
			switch {
			case p.Arrived():
				delays = append(delays, float64(p.ArrivedAt-p.InjectedAt))
			case p.Dropped():
				// Fault-free panels never drop; skip defensively.
			default:
				delays = append(delays, float64(entry.MaxSteps-p.InjectedAt))
			}
		}
		if len(delays) == 0 {
			return 0
		}
		sort.Float64s(delays)
		if entry.Metric == MetricP99Delay {
			return stats.Percentile(delays, 99)
		}
		var sum float64
		for _, d := range delays {
			sum += d
		}
		return sum / float64(len(delays))
	default:
		return math.Inf(1)
	}
}

// Verify runs the policy on a batch permutation under the paper's potential
// tracker and counts Property 8 breaches. The restricted rule passes by
// construction (that is Theorem 20's engine); a searched weighted policy
// that also passes inherits the paper's O(n·k) delivery argument
// empirically, and one that fails is measurably outside it.
func Verify(m *mesh.Mesh, polSpec string, seed int64, maxSteps int) (*Verification, error) {
	pol, err := spec.NewPolicy(polSpec)
	if err != nil {
		return nil, err
	}
	pkts, err := spec.NewWorkload("permutation", m, 0, rand.New(rand.NewSource(seed)))
	if err != nil {
		return nil, err
	}
	e, err := sim.New(m, pol, pkts, sim.Options{Seed: seed + 1, MaxSteps: maxSteps, Validation: sim.ValidateGreedy})
	if err != nil {
		return nil, err
	}
	tr := core.NewTracker(m, pkts, core.TrackerOptions{})
	e.AddObserver(tr)
	res, err := e.Run()
	if err != nil {
		return nil, err
	}
	vio := tr.Violations()
	return &Verification{
		Policy:              pol.Name(),
		Steps:               res.Steps,
		Property8Violations: vio.Property8,
		Property8Held:       vio.Property8 == 0,
		Violations:          vio.String(),
	}, nil
}
