package search

import (
	"reflect"
	"testing"

	"hotpotato/internal/mesh"
)

// quickConfig is a small but non-trivial search configuration used by the
// determinism and acceptance tests. Seed 7 is the committed reproduction
// seed: TestSearchBeatsBaseline pins the discovery it makes.
func quickConfig() Config {
	return Config{
		Side:        8,
		Seeds:       []int64{1},
		Population:  8,
		Generations: 3,
		Seed:        7,
		VerifySteps: 1500,
	}
}

func TestParamsSpecCanonical(t *testing.T) {
	cases := []struct {
		p    Params
		want string
	}{
		{Params{}, "weighted:age=0,defl=0,dist=0,restrict=0"},
		{Params{Age: 1, Restrict: 2}, "weighted:age=1,defl=0,dist=0,restrict=2"},
		{Params{Dist: -0.5, Deflect: 0.25}, "weighted:age=0,defl=0.25,dist=-0.5,restrict=0"},
	}
	for _, tc := range cases {
		if got := tc.p.Spec(); got != tc.want {
			t.Errorf("Spec(%+v) = %q, want %q", tc.p, got, tc.want)
		}
	}
}

func TestQuantize(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{0.12345, 0.125}, // nearest 1/256 (32/256)
		{100, 8},         // clamped
		{-100, -8},
		{-0.001, 0}, // rounds to -0, normalized
	}
	for _, tc := range cases {
		if got := quantize(tc.in); got != tc.want {
			t.Errorf("quantize(%g) = %g, want %g", tc.in, got, tc.want)
		}
	}
}

// TestSearchDeterministic: the same config must produce the same report,
// bit for bit — the reproducibility half of the acceptance criterion.
func TestSearchDeterministic(t *testing.T) {
	rep1, err := Run(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := Run(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep1, rep2) {
		t.Fatalf("search not deterministic:\nfirst  best %v fitness %v\nsecond best %v fitness %v",
			rep1.Best.Spec, rep1.Best.Fitness, rep2.Best.Spec, rep2.Best.Fitness)
	}
}

// TestSearchBeatsBaseline is the acceptance criterion: from the committed
// seed, the search discovers a weighted policy that beats the restricted
// baseline on at least one workload/metric pair, and the verification pass
// reports the Property 8 status of the winner.
func TestSearchBeatsBaseline(t *testing.T) {
	rep, err := Run(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Best.Fitness >= 1 {
		t.Errorf("best fitness %v does not beat the baseline", rep.Best.Fitness)
	}
	if len(rep.Wins) == 0 {
		t.Fatal("no workload/metric pair beat the baseline from the committed seed")
	}
	for _, w := range rep.Wins {
		if w.Score >= w.Baseline {
			t.Errorf("win %q is not a win: %v >= %v", w.Entry, w.Score, w.Baseline)
		}
	}
	if rep.Verification == nil {
		t.Fatal("verification pass did not run")
	}
	if rep.Verification.Policy != rep.Best.Spec && rep.Verification.Policy == "" {
		t.Errorf("verification ran for %q, want the best policy", rep.Verification.Policy)
	}
	if rep.Evaluated == 0 || len(rep.History) != rep.Config.Generations {
		t.Errorf("history incomplete: %d generations recorded, %d evaluated", len(rep.History), rep.Evaluated)
	}
}

// TestFitnessMonotone: per-generation best fitness never worsens, since
// elites always survive into the next generation.
func TestFitnessMonotone(t *testing.T) {
	rep, err := Run(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(rep.History); i++ {
		if rep.History[i].Fitness > rep.History[i-1].Fitness {
			t.Errorf("generation %d best fitness %v worse than generation %d's %v",
				i, rep.History[i].Fitness, i-1, rep.History[i-1].Fitness)
		}
	}
}

// TestVerifyRestrictedHolds: the paper's own rule must pass its own
// property — Verify on restricted-priority reports zero Property 8
// violations (that is Theorem 20's engine).
func TestVerifyRestrictedHolds(t *testing.T) {
	m := mesh.MustNew(2, 8)
	v, err := Verify(m, "restricted", 1, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Property8Held {
		t.Fatalf("restricted-priority violated Property 8 %d times: %s", v.Property8Violations, v.Violations)
	}
	if v.Steps == 0 {
		t.Fatal("verification ran zero steps")
	}
}

// TestSearchRejectsBadConfig covers the error paths.
func TestSearchRejectsBadConfig(t *testing.T) {
	cfg := quickConfig()
	cfg.Baseline = "no-such-policy"
	if _, err := Run(cfg); err == nil {
		t.Fatal("unknown baseline should be rejected")
	}
	cfg = quickConfig()
	cfg.Side = -1
	if _, err := Run(cfg); err == nil {
		t.Fatal("negative mesh side should be rejected")
	}
}
