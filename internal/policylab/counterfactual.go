package policylab

import (
	"fmt"

	"hotpotato/internal/mesh"
	"hotpotato/internal/sim"
	"hotpotato/internal/spec"
)

// ReplayConfig configures a counterfactual replay: re-run the window of
// Steps steps after a checkpoint under the original priority order and
// under each alternative, and score how the executions diverge.
type ReplayConfig struct {
	// Baseline is the policy spec of the run the checkpoint was taken from
	// (the same string passed to the original run's -policy). Replay
	// verifies it constructs a policy whose display name matches the
	// snapshot, exactly like resuming a checkpoint does.
	Baseline string
	// Alternatives are the policy specs to replay the window under.
	Alternatives []string
	// Steps is the window length; ≤ 0 means DefaultReplaySteps.
	Steps int
	// Arrivals rebuilds the run's injection source; required iff the
	// snapshot was taken from an arrival-driven run (the source's internal
	// state rides in the snapshot and is restored into it).
	Arrivals *spec.ArrivalSpec
}

// DefaultReplaySteps is the window length when ReplayConfig.Steps is unset.
const DefaultReplaySteps = 128

// Outcome scores one arm of a replay over the window.
type Outcome struct {
	// Policy is the arm's policy display name.
	Policy string `json:"policy"`
	// Steps is the number of steps actually executed (< the window length
	// when the arm drained the network first).
	Steps int `json:"steps"`
	// Delivered counts packets delivered during the window.
	Delivered int `json:"delivered"`
	// Deflections counts deflections issued during the window.
	Deflections int64 `json:"deflections"`
	// MeanDelay is the mean delay (arrival - injection) of the packets
	// delivered during the window (0 if none were).
	MeanDelay float64 `json:"mean_delay"`
	// Potential is the distance-potential trajectory: after each executed
	// step, the sum over live packets of their distance to destination.
	Potential []int64 `json:"potential"`
	// FinalHash is the engine's configuration hash after the window.
	FinalHash uint64 `json:"final_hash"`
	// Livelocked reports the arm livelocked inside the window.
	Livelocked bool `json:"livelocked,omitempty"`
}

// Divergence is an alternative arm's outcome scored against the baseline.
type Divergence struct {
	Outcome
	// DeliveredDelta and DeflectionsDelta are alternative minus baseline.
	DeliveredDelta   int   `json:"delivered_delta"`
	DeflectionsDelta int64 `json:"deflections_delta"`
	// PotentialL1 is the mean absolute difference between the two potential
	// trajectories (shorter trajectories are padded with their final value,
	// so an arm that drains early is compared at its drained level).
	PotentialL1 float64 `json:"potential_l1"`
	// FirstDiverge is the first window step whose post-step configuration
	// hash differs from the baseline's (-1 when the arm tracked the
	// baseline bit-for-bit to the end).
	FirstDiverge int `json:"first_diverge"`
}

// Report is the result of one counterfactual replay.
type Report struct {
	// CheckpointTime is the step the snapshot was taken at; the window is
	// [CheckpointTime, CheckpointTime+Steps).
	CheckpointTime int `json:"checkpoint_time"`
	// Live is the number of packets in flight at the checkpoint.
	Live int `json:"live"`
	// Baseline is the original policy's outcome over the window.
	Baseline Outcome `json:"baseline"`
	// Alternatives are the counterfactual arms in config order.
	Alternatives []Divergence `json:"alternatives"`
}

// Replay runs the counterfactual: one baseline arm plus one arm per
// alternative, each restored from its own copy of snap into a fresh engine.
// Everything is deterministic — same snapshot and same alternatives give a
// bit-identical Report.
func Replay(snap *sim.Snapshot, cfg ReplayConfig) (*Report, error) {
	if snap.HasFaults {
		return nil, fmt.Errorf("policylab: counterfactual replay under a fault model is not supported")
	}
	steps := cfg.Steps
	if steps <= 0 {
		steps = DefaultReplaySteps
	}
	m, err := buildMesh(snap)
	if err != nil {
		return nil, err
	}
	basePol, err := spec.NewPolicy(cfg.Baseline)
	if err != nil {
		return nil, err
	}
	if basePol.Name() != snap.PolicyName {
		return nil, fmt.Errorf("policylab: baseline policy %q is %q, but the checkpoint was written by %q (pass the original run's -policy)",
			cfg.Baseline, basePol.Name(), snap.PolicyName)
	}
	live := 0
	for i := range snap.Packets {
		if snap.Packets[i].ArrivedAt < 0 && snap.Packets[i].DroppedAt < 0 {
			live++
		}
	}
	rep := &Report{CheckpointTime: snap.Time, Live: live}
	base, baseHashes, err := runArm(m, snap, basePol, steps, cfg.Arrivals, snap.PolicyName)
	if err != nil {
		return nil, fmt.Errorf("policylab: baseline arm: %w", err)
	}
	rep.Baseline = base
	for _, alt := range cfg.Alternatives {
		pol, err := spec.NewPolicy(alt)
		if err != nil {
			return nil, err
		}
		out, hashes, err := runArm(m, snap, pol, steps, cfg.Arrivals, pol.Name())
		if err != nil {
			return nil, fmt.Errorf("policylab: arm %q: %w", alt, err)
		}
		rep.Alternatives = append(rep.Alternatives, score(base, baseHashes, out, hashes))
	}
	return rep, nil
}

// buildMesh reconstructs the run's mesh from the snapshot geometry.
func buildMesh(snap *sim.Snapshot) (*mesh.Mesh, error) {
	if snap.MeshWrap {
		return mesh.NewTorus(snap.MeshDim, snap.MeshSide)
	}
	return mesh.New(snap.MeshDim, snap.MeshSide)
}

// runArm restores a copy of snap into a fresh engine running pol and steps
// it through the window. The snapshot copy's PolicyName is rewritten to the
// arm's policy — that is the entire counterfactual: identical state,
// identical RNG stream, different priority order. MaxSteps is raised (in
// snapshot and options together, keeping Restore's guard satisfied) so the
// window always fits the budget.
func runArm(m *mesh.Mesh, snap *sim.Snapshot, pol sim.Policy, steps int, arrivals *spec.ArrivalSpec, name string) (Outcome, []uint64, error) {
	s := *snap
	s.PolicyName = name
	end := s.Time + steps
	if s.MaxSteps < end {
		s.MaxSteps = end
	}
	opts := sim.Options{
		MaxSteps:       s.MaxSteps,
		Seed:           s.Seed,
		Validation:     s.Validation,
		DetectLivelock: s.DetectLive,
		Workers:        s.Workers,
	}
	e, err := sim.New(m, pol, nil, opts)
	if err != nil {
		return Outcome{}, nil, err
	}
	if s.HasInjector {
		src, err := spec.BuildArrivals(arrivals, m)
		if err != nil {
			return Outcome{}, nil, err
		}
		if src == nil {
			return Outcome{}, nil, fmt.Errorf("the checkpoint carries injector state; the original run's -arrivals spec is required")
		}
		e.SetInjector(src)
	} else if arrivals != nil {
		return Outcome{}, nil, fmt.Errorf("the checkpoint has no injector, but an arrivals spec was given")
	}
	if err := e.Restore(&s); err != nil {
		return Outcome{}, nil, err
	}

	delivered0, deflect0 := tally(e)
	out := Outcome{Policy: name}
	hashes := make([]uint64, 0, steps)
	for t := 0; t < steps; t++ {
		if e.Done() && !s.HasInjector {
			break
		}
		if e.Livelocked() || e.Time() >= opts.MaxSteps {
			break
		}
		if err := e.Step(); err != nil {
			return Outcome{}, nil, err
		}
		out.Steps++
		out.Potential = append(out.Potential, potential(e, m))
		hashes = append(hashes, e.StateHash())
	}
	out.FinalHash = e.StateHash()
	out.Livelocked = e.Livelocked()
	delivered1, deflect1 := tally(e)
	out.Deflections = deflect1 - deflect0
	ckptTime := snap.Time
	var sum, cnt int64
	for _, p := range e.Packets() {
		if p.Arrived() && p.ArrivedAt > ckptTime {
			sum += int64(p.ArrivedAt - p.InjectedAt)
			cnt++
		}
	}
	out.Delivered = delivered1 - delivered0
	if cnt > 0 {
		out.MeanDelay = float64(sum) / float64(cnt)
	}
	return out, hashes, nil
}

// tally counts delivered packets and summed deflections over the engine's
// whole packet population.
func tally(e *sim.Engine) (delivered int, deflections int64) {
	for _, p := range e.Packets() {
		if p.Arrived() {
			delivered++
		}
		deflections += int64(p.Deflections)
	}
	return delivered, deflections
}

// potential is the distance potential of the live population: the sum over
// packets in flight of their distance to destination — the quantity the
// paper's Property 8 forces downward at loaded nodes.
func potential(e *sim.Engine, m *mesh.Mesh) int64 {
	var phi int64
	for _, p := range e.Packets() {
		if !p.Arrived() && !p.Dropped() {
			phi += int64(m.Dist(p.Node, p.Dst))
		}
	}
	return phi
}

// score computes an alternative's divergence from the baseline.
func score(base Outcome, baseHashes []uint64, alt Outcome, altHashes []uint64) Divergence {
	d := Divergence{
		Outcome:          alt,
		DeliveredDelta:   alt.Delivered - base.Delivered,
		DeflectionsDelta: alt.Deflections - base.Deflections,
		FirstDiverge:     -1,
	}
	n := max(len(base.Potential), len(alt.Potential))
	var l1 float64
	for i := 0; i < n; i++ {
		l1 += absF(float64(trajAt(alt.Potential, i) - trajAt(base.Potential, i)))
	}
	if n > 0 {
		d.PotentialL1 = l1 / float64(n)
	}
	hn := max(len(baseHashes), len(altHashes))
	for i := 0; i < hn; i++ {
		if i >= len(baseHashes) || i >= len(altHashes) || baseHashes[i] != altHashes[i] {
			d.FirstDiverge = i
			break
		}
	}
	return d
}

// trajAt reads a trajectory with its final value extended past the end
// (an arm that drained early holds its drained level); empty trajectories
// read as 0.
func trajAt(traj []int64, i int) int64 {
	if len(traj) == 0 {
		return 0
	}
	if i >= len(traj) {
		return traj[len(traj)-1]
	}
	return traj[i]
}

func absF(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
