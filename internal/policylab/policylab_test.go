package policylab

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"hotpotato/internal/mesh"
	"hotpotato/internal/sim"
	"hotpotato/internal/spec"
	"hotpotato/internal/workload"
)

// mkRecord builds a distinguishable conflict record for framing tests.
func mkRecord(t, node int) sim.ConflictRecord {
	return sim.ConflictRecord{
		Time: t, Node: mesh.NodeID(node), Winners: 1, Deflected: 1,
		DistBefore: 7, DistAfter: 6,
		Contenders: []sim.ConflictPacket{
			{ID: 10 * t, Dst: mesh.NodeID(node + 1), Age: 3, Dist: 4, GoodCount: 1, Restricted: true, TypeA: true, Advanced: true},
			{ID: 10*t + 1, Dst: mesh.NodeID(node + 2), Age: 1, Dist: 2, GoodCount: 2, Dir: 1},
		},
	}
}

func TestTraceRoundtrip(t *testing.T) {
	var buf bytes.Buffer
	hdr := TraceHeader{Dim: 2, Side: 8, Wrap: true, Policy: "restricted-priority", Seed: 42}
	w, err := NewWriter(&buf, hdr)
	if err != nil {
		t.Fatal(err)
	}
	var want []sim.ConflictRecord
	for i := 0; i < 17; i++ {
		rec := mkRecord(i, 100+i)
		want = append(want, rec)
		if err := w.Write(&rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	got, recs, err := ReadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	hdr.Trace = traceName
	hdr.Version = TraceVersion
	if got != hdr {
		t.Fatalf("header mismatch: got %+v want %+v", got, hdr)
	}
	if !reflect.DeepEqual(recs, want) {
		t.Fatalf("records mismatch:\ngot  %+v\nwant %+v", recs, want)
	}
}

// TestTraceTornTail checks the crash-tolerance contract shared with the
// journal and WAL formats: a torn final line is chopped silently, while a
// bad line followed by more decodable records is corruption.
func TestTraceTornTail(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, TraceHeader{Dim: 2, Side: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		rec := mkRecord(i, i)
		if err := w.Write(&rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	// Chop the final record mid-line: reads as 2 records, no error.
	torn := full[:len(full)-10]
	_, recs, err := ReadTrace(bytes.NewReader(torn))
	if err != nil {
		t.Fatalf("torn tail should be tolerated, got %v", err)
	}
	if len(recs) != 2 {
		t.Fatalf("torn tail: got %d records, want 2", len(recs))
	}

	// Corrupt a middle record: decodable records follow, so this is an error.
	lines := bytes.Split(full, []byte("\n"))
	lines[1][9] ^= 0x01 // flip a payload byte under the CRC
	_, _, err = ReadTrace(bytes.NewReader(bytes.Join(lines, []byte("\n"))))
	if err == nil || !errors.Is(err, ErrBadTrace) {
		t.Fatalf("mid-file corruption should fail with ErrBadTrace, got %v", err)
	}
	if err == nil || !strings.Contains(err.Error(), "corrupt record") {
		t.Fatalf("want corrupt-record error, got %v", err)
	}
}

func TestTraceRejectsForeignHeader(t *testing.T) {
	_, _, err := ReadTrace(strings.NewReader("{\"trace\":\"something-else\",\"version\":1}\n"))
	if err == nil || !errors.Is(err, ErrBadTrace) {
		t.Fatalf("foreign header should fail with ErrBadTrace, got %v", err)
	}
	_, _, err = ReadTrace(strings.NewReader(""))
	if err == nil {
		t.Fatal("empty input should fail")
	}
}

// TestRecorderRingWrap checks that the ring keeps the most recent records,
// the aggregate counters keep counting past wrap-around, and the retained
// records do not alias each other or the caller's record.
func TestRecorderRingWrap(t *testing.T) {
	r := NewRecorder(4)
	for i := 0; i < 10; i++ {
		rec := mkRecord(i, i)
		r.OnConflict(&rec)
		// Mutate the caller's record afterward; retained copies must not move.
		rec.Contenders[0].ID = -1
	}
	if r.Total() != 10 {
		t.Fatalf("total = %d, want 10", r.Total())
	}
	recs := r.Records()
	if len(recs) != 4 {
		t.Fatalf("retained %d records, want 4", len(recs))
	}
	for i, rec := range recs {
		wantT := 6 + i
		if rec.Time != wantT {
			t.Errorf("record %d: time %d, want %d (oldest-first window)", i, rec.Time, wantT)
		}
		if rec.Contenders[0].ID != 10*wantT {
			t.Errorf("record %d: contender aliased or stale: id %d, want %d", i, rec.Contenders[0].ID, 10*wantT)
		}
	}
	total, contenders, deflected, db, da := r.Stats()
	if total != 10 || contenders != 20 || deflected != 10 || db != 70 || da != 60 {
		t.Fatalf("stats = (%d %d %d %d %d), want (10 20 10 70 60)", total, contenders, deflected, db, da)
	}
}

// TestTracedRunParity is the satellite's bit-identity requirement: a run
// with a conflict observer attached must be step-for-step identical to the
// same run without one. The observer only reads engine state after moves
// are applied; any divergence means the tap perturbed the simulation.
func TestTracedRunParity(t *testing.T) {
	m := mesh.MustNew(2, 8)
	for _, polSpec := range []string{"restricted", "oldest", "weighted:age=1,restrict=2"} {
		t.Run(polSpec, func(t *testing.T) {
			mk := func(traced bool) (*sim.Engine, *Recorder) {
				rng := rand.New(rand.NewSource(5))
				pkts, err := workload.UniformRandom(m, 70, rng)
				if err != nil {
					t.Fatal(err)
				}
				pol, err := spec.NewPolicy(polSpec)
				if err != nil {
					t.Fatal(err)
				}
				e, err := sim.New(m, pol, pkts, sim.Options{Seed: 6, Validation: sim.ValidateGreedy})
				if err != nil {
					t.Fatal(err)
				}
				var rec *Recorder
				if traced {
					rec = NewRecorder(64)
					e.SetConflictObserver(rec)
				}
				return e, rec
			}
			plain, _ := mk(false)
			traced, rec := mk(true)
			for !plain.Done() && !plain.Livelocked() {
				if err := plain.Step(); err != nil {
					t.Fatal(err)
				}
				if err := traced.Step(); err != nil {
					t.Fatal(err)
				}
				if hp, ht := plain.StateHash(), traced.StateHash(); hp != ht {
					t.Fatalf("tracing perturbed the run at step %d: %#x vs %#x", plain.Time(), hp, ht)
				}
			}
			if traced.Done() != plain.Done() || traced.Time() != plain.Time() {
				t.Fatal("tracing changed the run length")
			}
			if rec.Total() == 0 {
				t.Fatal("no conflicts recorded on a 70-packet batch; the tap is not firing")
			}
		})
	}
}

// TestConflictRecordContents spot-checks the semantic fields of emitted
// records against the engine's packet state.
func TestConflictRecordContents(t *testing.T) {
	m := mesh.MustNew(2, 6)
	rng := rand.New(rand.NewSource(3))
	pkts, err := workload.UniformRandom(m, 40, rng)
	if err != nil {
		t.Fatal(err)
	}
	pol, err := spec.NewPolicy("restricted")
	if err != nil {
		t.Fatal(err)
	}
	e, err := sim.New(m, pol, pkts, sim.Options{Seed: 4, Validation: sim.ValidateGreedy})
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	e.SetConflictObserver(sim.ConflictObserverFunc(func(rec *sim.ConflictRecord) {
		if len(rec.Contenders) < 2 {
			t.Fatalf("conflict with %d contenders", len(rec.Contenders))
		}
		if rec.Deflected < 1 {
			t.Fatalf("conflict with no deflection at t=%d node %d", rec.Time, rec.Node)
		}
		if rec.Winners+rec.Deflected != len(rec.Contenders) {
			t.Fatalf("winners %d + deflected %d != contenders %d", rec.Winners, rec.Deflected, len(rec.Contenders))
		}
		if rec.Time != e.Time()-1 {
			// The observer fires inside Step after e.time advanced to t+1;
			// the record carries the step that made the moves, t.
			t.Fatalf("record time %d, engine mid-step time %d", rec.Time, e.Time())
		}
		var advanced int
		for _, c := range rec.Contenders {
			if c.Advanced {
				advanced++
			}
			if c.Age < 0 || c.Dist < 0 {
				t.Fatalf("negative age/dist: %+v", c)
			}
		}
		if advanced != rec.Winners {
			t.Fatalf("advanced flags %d != winners %d", advanced, rec.Winners)
		}
		checked++
	}))
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if checked == 0 {
		t.Fatal("no conflicts observed")
	}
}

// replaySetup runs a fresh adversary run to a checkpoint for replay tests.
func replaySetup(t *testing.T) (*sim.Snapshot, *spec.ArrivalSpec) {
	t.Helper()
	m := mesh.MustNew(2, 8)
	pol, err := spec.NewPolicy("restricted")
	if err != nil {
		t.Fatal(err)
	}
	as, err := spec.ParseArrivalSpec("adversary:rho=2,sigma=6,until=120")
	if err != nil {
		t.Fatal(err)
	}
	src, err := spec.BuildArrivals(as, m)
	if err != nil {
		t.Fatal(err)
	}
	e, err := sim.New(m, pol, nil, sim.Options{Seed: 11, MaxSteps: 4000, Validation: sim.ValidateGreedy})
	if err != nil {
		t.Fatal(err)
	}
	e.SetInjector(src)
	for e.Time() < 60 {
		if err := e.Step(); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := e.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	return snap, as
}

// TestReplayDeterministic is the acceptance criterion: the same checkpoint
// and the same alternative order must produce bit-identical divergence
// scores on repeated runs.
func TestReplayDeterministic(t *testing.T) {
	snap, as := replaySetup(t)
	cfg := ReplayConfig{
		Baseline:     "restricted",
		Alternatives: []string{"oldest", "nearest", "weighted:age=1,restrict=2"},
		Steps:        64,
		Arrivals:     as,
	}
	rep1, err := Replay(snap, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := Replay(snap, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep1, rep2) {
		t.Fatalf("replay not deterministic:\nfirst  %+v\nsecond %+v", rep1, rep2)
	}
	if rep1.Baseline.Steps == 0 {
		t.Fatal("baseline arm executed no steps")
	}
	if len(rep1.Alternatives) != 3 {
		t.Fatalf("want 3 alternatives, got %d", len(rep1.Alternatives))
	}
}

// TestReplayBaselineSelfConsistent: replaying the window under the original
// policy must reproduce the original execution exactly — the baseline arm
// of a replay diverges from itself nowhere.
func TestReplayBaselineSelfConsistent(t *testing.T) {
	snap, as := replaySetup(t)
	rep, err := Replay(snap, ReplayConfig{
		Baseline:     "restricted",
		Alternatives: []string{"restricted"},
		Steps:        64,
		Arrivals:     as,
	})
	if err != nil {
		t.Fatal(err)
	}
	d := rep.Alternatives[0]
	if d.FirstDiverge != -1 {
		t.Fatalf("baseline-vs-baseline diverged at %d", d.FirstDiverge)
	}
	if d.PotentialL1 != 0 || d.DeliveredDelta != 0 || d.DeflectionsDelta != 0 {
		t.Fatalf("baseline-vs-baseline has nonzero divergence: %+v", d)
	}
	if d.FinalHash != rep.Baseline.FinalHash {
		t.Fatal("final hashes differ for identical arms")
	}
}

// TestReplayGuards checks the error paths: wrong baseline policy, missing
// arrivals for an injector-carrying checkpoint, and spurious arrivals for a
// batch checkpoint.
func TestReplayGuards(t *testing.T) {
	snap, as := replaySetup(t)
	if _, err := Replay(snap, ReplayConfig{Baseline: "oldest", Arrivals: as}); err == nil {
		t.Fatal("wrong baseline policy should be rejected")
	}
	if _, err := Replay(snap, ReplayConfig{Baseline: "restricted"}); err == nil {
		t.Fatal("missing arrivals for an injector checkpoint should be rejected")
	}

	// Batch checkpoint: arrivals must be rejected.
	m := mesh.MustNew(2, 6)
	pol, err := spec.NewPolicy("restricted")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	pkts, err := workload.UniformRandom(m, 30, rng)
	if err != nil {
		t.Fatal(err)
	}
	e, err := sim.New(m, pol, pkts, sim.Options{Seed: 3, Validation: sim.ValidateGreedy})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := e.Step(); err != nil {
			t.Fatal(err)
		}
	}
	bsnap, err := e.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(bsnap, ReplayConfig{Baseline: "restricted", Arrivals: as}); err == nil {
		t.Fatal("arrivals for a batch checkpoint should be rejected")
	}
	if _, err := Replay(bsnap, ReplayConfig{Baseline: "restricted", Alternatives: []string{"oldest"}}); err != nil {
		t.Fatalf("batch replay failed: %v", err)
	}
}

// TestRecorderSpillErrorLatched: the first spill error is reported and
// recording continues.
type failWriter struct{ n int }

func (f *failWriter) Write(p []byte) (int, error) {
	f.n += len(p)
	if f.n > 40 {
		return 0, fmt.Errorf("disk full")
	}
	return len(p), nil
}

func TestRecorderSpillErrorLatched(t *testing.T) {
	fw := &failWriter{}
	w, err := NewWriter(fw, TraceHeader{Dim: 2, Side: 4})
	if err != nil {
		t.Fatal(err)
	}
	r := NewRecorder(8)
	r.Spill(w)
	for i := 0; i < 5; i++ {
		rec := mkRecord(i, i)
		r.OnConflict(&rec)
		w.Flush()
	}
	if r.Err() == nil {
		t.Fatal("spill error not latched")
	}
	if r.Total() != 5 {
		t.Fatalf("recording stopped after spill error: total %d", r.Total())
	}
}
